"""Incremental-vs-from-scratch LP parity: the warm path may never change answers.

Property tests drive random constraint streams through an
:class:`~repro.lp.incremental.IncrementalLP` (warm-started re-solves) and
its dense :class:`~repro.lp.problem.LinearProgram` twin (cold re-solves),
asserting identical statuses, identical optimal objectives, and — on the
HiGHS backend — bit-identical optimal points.  Infeasible, unbounded and
degenerate (Bland's-rule fallback) programs are covered explicitly, as is
the cutting-plane driver running both problem kinds side by side.
"""

import numpy as np
import pytest

from repro.lp import (
    IncrementalLP,
    LinearProgram,
    LPStatus,
    WarmSimplex,
    solve_lp,
    solve_with_cutting_planes,
)

METHODS = ("highs", "simplex")


def _random_pair(rng, n):
    c = rng.normal(size=n)
    upper = np.where(rng.random(n) < 0.5, rng.random(n) * 5 + 0.5, np.inf)
    inc = IncrementalLP(n, c, upper=upper)
    dense = LinearProgram(n_vars=n, c=c.copy(), upper=upper.copy())
    return inc, dense


def _assert_agree(inc, dense, method, context):
    ri = inc.solve(method=method)
    rd = solve_lp(dense, method=method)
    assert ri.status == rd.status, (context, method, ri.status, rd.status)
    if ri.ok:
        scale = max(1.0, abs(rd.objective))
        assert abs(ri.objective - rd.objective) <= 1e-7 * scale, (
            context,
            method,
            ri.objective,
            rd.objective,
        )
        if method == "highs":
            # Same matrices reach the same solver: bit-identical points.
            assert np.array_equal(ri.x, rd.x), context


@pytest.mark.parametrize("method", METHODS)
def test_parity_over_random_constraint_streams(method):
    rng = np.random.default_rng(hash(method) % 2**32)
    for trial in range(25):
        n = int(rng.integers(3, 12))
        inc, dense = _random_pair(rng, n)
        _assert_agree(inc, dense, method, (trial, "empty"))
        for batch in range(int(rng.integers(1, 4))):
            for _ in range(int(rng.integers(1, 5))):
                row = rng.normal(size=n)
                row[rng.random(n) < 0.5] = 0.0
                rhs = float(rng.normal())
                inc.add_constraint(row, rhs)
                dense.add_constraint(row, rhs)
            _assert_agree(inc, dense, method, (trial, batch))


@pytest.mark.parametrize("method", METHODS)
def test_unbounded_then_bounded_then_infeasible(method):
    inc = IncrementalLP(2, np.array([-1.0, 0.0]))
    assert inc.solve(method=method).status is LPStatus.UNBOUNDED
    inc.add_constraint([1.0, 0.0], 3.0)
    res = inc.solve(method=method)
    assert res.ok and res.objective == pytest.approx(-3.0)
    inc.add_constraint([-1.0, 0.0], -10.0)  # x0 >= 10 contradicts x0 <= 3
    assert inc.solve(method=method).status is LPStatus.INFEASIBLE
    inc.add_constraint([0.0, 1.0], 1.0)  # still infeasible with more rows
    assert inc.solve(method=method).status is LPStatus.INFEASIBLE


def test_degenerate_bland_fallback_case():
    """Beale's cycling example: Dantzig stalls, the Bland switch resolves it.

    Both the cold reference and a warm re-solve (after appending a
    redundant cut) must find the known optimum -0.05.
    """
    c = np.array([-0.75, 150.0, -0.02, 6.0])
    rows = [
        ([0.25, -60.0, -0.04, 9.0], 0.0),
        ([0.5, -90.0, -0.02, 3.0], 0.0),
        ([0.0, 0.0, 1.0, 0.0], 1.0),
    ]
    inc = IncrementalLP(4, c)
    dense = LinearProgram(n_vars=4, c=c.copy())
    for row, rhs in rows:
        inc.add_constraint(row, rhs)
        dense.add_constraint(row, rhs)
    ri = inc.solve(method="simplex")
    rd = solve_lp(dense, method="simplex")
    assert ri.ok and rd.ok
    assert ri.objective == pytest.approx(-0.05)
    assert rd.objective == pytest.approx(-0.05)
    # Warm resolve from the optimal basis after a non-binding cut.
    inc.add_constraint([1.0, 0.0, 0.0, 0.0], 100.0)
    dense.add_constraint([1.0, 0.0, 0.0, 0.0], 100.0)
    _assert_agree(inc, dense, "simplex", "beale+cut")
    assert inc.stats.warm_start_hits >= 1


def test_cutting_plane_driver_identical_cut_sets():
    """The driver admits the same cuts through either problem kind."""
    rng = np.random.default_rng(5)
    n = 6
    c = -np.ones(n)
    upper = rng.random(n) * 2 + 1
    targets = rng.random(n) * 0.5

    def oracle_for(log):
        def oracle(x):
            cuts = []
            for j in range(n):
                if x[j] > targets[j] + 1e-9:
                    row = np.zeros(n)
                    row[j] = 1.0
                    cuts.append((row, float(targets[j])))
            log.append(len(cuts))
            return cuts

        return oracle

    for method in METHODS:
        log_inc, log_dense = [], []
        inc = IncrementalLP(n, c.copy(), upper=upper.copy())
        dense = LinearProgram(n_vars=n, c=c.copy(), upper=upper.copy())
        out_inc = solve_with_cutting_planes(inc, oracle_for(log_inc), method=method)
        out_dense = solve_with_cutting_planes(
            dense, oracle_for(log_dense), method=method
        )
        assert out_inc.ok and out_dense.ok
        assert log_inc == log_dense
        assert (out_inc.rounds, out_inc.cuts_added) == (
            out_dense.rounds,
            out_dense.cuts_added,
        )
        assert out_inc.result.objective == pytest.approx(out_dense.result.objective)
        A_inc, b_inc = inc.matrices()
        A_dense, b_dense = dense.matrices()
        assert np.array_equal(A_inc, A_dense) and np.array_equal(b_inc, b_dense)


def test_incremental_lp_row_store_and_twin():
    lp = IncrementalLP(4, np.ones(4))
    lp.add_sparse_constraint([(2, 1.5), (0, -1.0), (2, 0.5)], 3.0)
    lp.add_constraint([0.0, 2.0, 0.0, -1.0], -1.0)
    assert lp.n_constraints == 2
    assert np.array_equal(lp.row(0), [-1.0, 0.0, 2.0, 0.0])
    A, b = lp.matrices()
    assert A.shape == (2, 4) and list(b) == [3.0, -1.0]
    twin = lp.to_linear_program()
    assert twin.n_constraints == 2
    A2, b2 = twin.matrices()
    assert np.array_equal(A, A2) and np.array_equal(b, b2)
    with pytest.raises(IndexError):
        lp.row(2)
    with pytest.raises(IndexError):
        lp.add_sparse_constraint([(7, 1.0)], 0.0)
    with pytest.raises(ValueError):
        lp.add_constraint([1.0, 2.0], 0.0)


def test_sparse_matrix_survives_growth():
    """Previously returned matrices must not see later appends."""
    lp = IncrementalLP(3, np.ones(3))
    lp.add_constraint([1.0, 0.0, 2.0], 1.0)
    first = lp.sparse_matrix()
    for i in range(40):  # force several capacity doublings
        lp.add_constraint([float(i + 1), 1.0, 0.0], float(i))
    assert first.shape == (1, 3)
    assert np.array_equal(first.toarray(), [[1.0, 0.0, 2.0]])
    assert lp.sparse_matrix().shape == (41, 3)


def test_warm_start_bookkeeping():
    lp = IncrementalLP(3, np.ones(3), upper=np.array([1.0, 2.0, 3.0]))
    lp.add_constraint([-1.0, -1.0, 0.0], -1.0)  # x0 + x1 >= 1
    first = lp.solve(method="highs")
    assert first.ok
    hits0 = lp.stats.warm_start_hits
    # Unchanged program: answered from the cached result.
    again = lp.solve(method="highs")
    assert again is first
    assert lp.stats.warm_start_hits == hits0 + 1
    # A row the optimum already satisfies cannot displace it.
    lp.add_constraint([1.0, 1.0, 1.0], 100.0)
    shortcut = lp.solve(method="highs")
    assert shortcut is first
    assert lp.stats.warm_start_hits == hits0 + 2
    # A violated row (x2 >= 0.5 while the optimum has x2 = 0) forces a
    # real re-solve.
    assert first.x is not None and first.x[2] == 0.0
    lp.add_constraint([0.0, 0.0, -1.0], -0.5)
    res = lp.solve(method="highs")
    assert res.ok and res is not first
    assert res.x is not None and res.x[2] == pytest.approx(0.5)
    assert lp.stats.solves == 4 and lp.stats.rows_added == 3


def test_warm_simplex_rejects_bad_rows():
    warm = WarmSimplex(3, np.ones(3))
    with pytest.raises(ValueError):
        warm.add_row([1.0, 2.0], 0.0)
    with pytest.raises(ValueError):
        WarmSimplex(2, np.ones(2), lower=np.array([-np.inf, 0.0]))


def test_linear_program_matrices_cache():
    lp = LinearProgram(n_vars=2, c=np.ones(2))
    lp.add_constraint([1.0, 0.0], 1.0)
    A1, b1 = lp.matrices()
    A2, b2 = lp.matrices()
    assert A1 is A2 and b1 is b2  # cached until the next append
    lp.add_constraint([0.0, 1.0], 2.0)
    A3, b3 = lp.matrices()
    assert A3 is not A1 and A3.shape == (2, 2)
    assert list(b3) == [1.0, 2.0]


def test_matrices_cache_invalidated_across_backend_swap():
    """Regression: append-then-swap-backend must never serve stale matrices.

    The old memo keyed on ``len(rows)`` alone could hand backend B the
    matrices snapshotted for backend A *before* an ``add_constraint`` if a
    row list was swapped wholesale; the version-counter key closes that.
    Every registered always-available backend must see the fresh row.
    """
    lp = LinearProgram(n_vars=2, c=np.array([1.0, 1.0]))
    lp.add_constraint([-1.0, 0.0], -1.0)  # x1 >= 1
    first = solve_lp(lp, method="highs")
    assert first.objective == pytest.approx(1.0)
    lp.add_constraint([0.0, -1.0], -2.0)  # x2 >= 2, added after a solve
    for method in ("warm-tableau", "exact", "highs-sparse"):
        res = solve_lp(lp, method=method)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(3.0), method
