"""The virtual cost function of Lemma 7 (and Figure 4).

For a heavy edge ``a`` of weight ``c`` used by ``m_a`` heavy players and
carrying subsidies ``y_a``::

    vc(a, y_a) = c * ln( m_a / (m_a - 1 + y_a / c) )

Claim 8: ``vc(a, y_a) >= (c - y_a) / n_a(T)`` — the virtual cost dominates
every player's real share of the edge.  Claim 10: on a path whose heavy-edge
multiplicities are consecutive integers ``t - |q'| + 1 .. t``, packing a
total ``y(q)`` of subsidies on the least crowded edges gives::

    vc(q, y) = c * ln( t / (t - |q'| + y(q)/c) )

Both claims are exercised directly by the test suite and the Figure 4
experiment.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def edge_virtual_cost(c: float, m: int, y: float = 0.0) -> float:
    """``vc(a, y)`` for a heavy edge of weight ``c`` with multiplicity ``m``.

    Returns ``inf`` for an unsubsidized edge with ``m = 1`` (the paper's
    "virtual cost would be infinite" case that forces the cut set ``S`` to
    hit every heavy path).
    """
    if c <= 0:
        raise ValueError("virtual cost is defined for heavy edges (c > 0)")
    if m < 1:
        raise ValueError(f"multiplicity must be >= 1, got {m}")
    if not 0.0 <= y <= c * (1 + 1e-12):
        raise ValueError(f"subsidy {y} outside [0, {c}]")
    denom = m - 1.0 + min(y, c) / c
    if denom <= 0.0:
        return math.inf
    return c * math.log(m / denom)


def path_virtual_cost(c: float, multiplicities: Sequence[int], subsidies: Sequence[float]) -> float:
    """Sum of per-edge virtual costs along a path of heavy edges."""
    if len(multiplicities) != len(subsidies):
        raise ValueError("multiplicities and subsidies must align")
    return sum(edge_virtual_cost(c, m, y) for m, y in zip(multiplicities, subsidies))


def pack_subsidies_on_path(
    c: float, multiplicities: Sequence[int], total: float
) -> List[float]:
    """Distribute ``total`` subsidies on a path, least-crowded edges first.

    Implements Definition 9: an edge receives partial subsidies only when
    every strictly-less-crowded heavy edge is already fully subsidized.
    Ties are filled in input order.
    """
    if total < -1e-12 or total > c * len(multiplicities) + 1e-9:
        raise ValueError("total subsidies outside feasible range")
    order = sorted(range(len(multiplicities)), key=lambda i: (multiplicities[i], i))
    out = [0.0] * len(multiplicities)
    remaining = max(0.0, total)
    for i in order:
        take = min(c, remaining)
        out[i] = take
        remaining -= take
        if remaining <= 0:
            break
    return out


def claim10_closed_form(c: float, t: int, q_len: int, total: float) -> float:
    """The Claim 10 closed form ``c * ln(t / (t - |q'| + y(q)/c))``."""
    denom = t - q_len + total / c
    if denom <= 0:
        return math.inf
    return c * math.log(t / denom)


def real_cost_share(
    c: float, multiplicities: Sequence[int], subsidies: Sequence[float]
) -> float:
    """Real cost ``sum (c - y_a)/m_a`` of the deepest player on a heavy path.

    In the single-path game the edge loads coincide with the heavy-player
    multiplicities, so this is the grey-line area in Figure 4.  Claim 8
    guarantees it never exceeds the virtual cost.
    """
    return sum((c - y) / m for m, y in zip(multiplicities, subsidies))
