"""Tests for approximate equilibria and the subsidies/stretch tradeoff."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds.instances import theorem11_cycle_instance
from repro.games import BroadcastGame, check_equilibrium
from repro.games.approx import (
    equilibrium_stretch,
    is_alpha_equilibrium,
    subsidies_for_stretch,
)
from repro.graphs import Graph
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies import solve_sne_broadcast_lp3


@pytest.fixture
def shortcut_triangle():
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
    return BroadcastGame(g, root=0).tree_state([(0, 1), (1, 2)])


class TestStretch:
    def test_exact_equilibrium_has_stretch_one(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        state = BroadcastGame(g, root=0).tree_state([(0, 1), (1, 2)])
        assert equilibrium_stretch(state) == pytest.approx(1.0)

    def test_triangle_stretch(self, shortcut_triangle):
        # Player 2 pays 1.5 vs best response 1.2: stretch = 1.25.
        assert equilibrium_stretch(shortcut_triangle) == pytest.approx(1.5 / 1.2)

    def test_subsidies_reduce_stretch(self, shortcut_triangle):
        raw = equilibrium_stretch(shortcut_triangle)
        subsidized = equilibrium_stretch(shortcut_triangle, {(1, 2): 0.3})
        assert subsidized < raw
        assert subsidized == pytest.approx(1.0)

    def test_infinite_stretch_on_free_bypass(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.0)])
        state = BroadcastGame(g, root=0).tree_state([(0, 1), (1, 2)])
        assert equilibrium_stretch(state) == math.inf

    def test_general_game_stretch(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)])
        game = BroadcastGame(g, root=0).to_network_design_game()
        bc = BroadcastGame(g, root=0)
        state = game.state(bc.tree_state_to_paths(bc.mst_state()))
        assert equilibrium_stretch(state) == pytest.approx(1.0)


class TestIsAlpha:
    def test_threshold(self, shortcut_triangle):
        assert not is_alpha_equilibrium(shortcut_triangle, 1.0)
        assert not is_alpha_equilibrium(shortcut_triangle, 1.2)
        assert is_alpha_equilibrium(shortcut_triangle, 1.25)
        assert is_alpha_equilibrium(shortcut_triangle, 2.0)

    def test_alpha_validation(self, shortcut_triangle):
        with pytest.raises(ValueError):
            is_alpha_equilibrium(shortcut_triangle, 0.5)

    def test_consistent_with_exact_checker(self, shortcut_triangle):
        assert is_alpha_equilibrium(shortcut_triangle, 1.0) == check_equilibrium(
            shortcut_triangle
        ).is_equilibrium


class TestSubsidiesForStretch:
    def test_alpha_one_matches_sne(self, shortcut_triangle):
        sub, cost = subsidies_for_stretch(shortcut_triangle, 1.0)
        exact = solve_sne_broadcast_lp3(shortcut_triangle)
        assert cost == pytest.approx(exact.cost, abs=1e-6)

    def test_result_achieves_stretch(self, shortcut_triangle):
        for alpha in (1.0, 1.1, 1.2):
            sub, _ = subsidies_for_stretch(shortcut_triangle, alpha)
            assert sub is not None
            assert equilibrium_stretch(shortcut_triangle, sub) <= alpha + 1e-6

    def test_monotone_cheaper_with_alpha(self, shortcut_triangle):
        costs = [subsidies_for_stretch(shortcut_triangle, a)[1] for a in (1.0, 1.1, 1.25)]
        assert costs[0] >= costs[1] >= costs[2]
        assert costs[2] == pytest.approx(0.0, abs=1e-8)  # already 1.25-approx

    def test_alpha_validation(self, shortcut_triangle):
        with pytest.raises(ValueError):
            subsidies_for_stretch(shortcut_triangle, 0.9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 9), st.integers(0, 5000))
    def test_random_instances_tradeoff(self, n, seed):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        state = BroadcastGame(g, root=0).mst_state()
        c1 = subsidies_for_stretch(state, 1.0)[1]
        c15 = subsidies_for_stretch(state, 1.5)[1]
        exact = solve_sne_broadcast_lp3(state).cost
        assert c1 == pytest.approx(exact, abs=1e-5)
        assert c15 <= c1 + 1e-9

    def test_cycle_instance_free_at_large_alpha(self):
        _, state = theorem11_cycle_instance(12)
        raw = equilibrium_stretch(state)
        sub, cost = subsidies_for_stretch(state, raw + 0.01)
        assert cost == pytest.approx(0.0, abs=1e-7)
