"""Tests for instance generators."""

import pytest

from repro.graphs import generators as gen


class TestDeterministicFamilies:
    def test_path_graph(self):
        g = gen.path_graph(4, weights=[1.0, 2.0, 3.0])
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert g.weight(1, 2) == 2.0

    def test_path_graph_single_node(self):
        g = gen.path_graph(1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_cycle_graph(self):
        g = gen.cycle_graph(5, weight=2.0)
        assert g.num_edges == 5
        assert all(w == 2.0 for _, _, w in g.edges())
        assert all(g.degree(u) == 2 for u in g.nodes)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_complete_graph(self):
        g = gen.complete_graph(6)
        assert g.num_edges == 15

    def test_star_graph(self):
        g = gen.star_graph(7)
        assert g.degree(0) == 7
        assert g.num_nodes == 8

    def test_wheel_graph(self):
        g = gen.wheel_graph(5, spoke_weight=3.0, rim_weight=1.0)
        assert g.degree(0) == 5
        assert g.num_edges == 10
        assert g.weight(0, 1) == 3.0
        assert g.weight(1, 2) == 1.0

    def test_grid_graph(self):
        g = gen.grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_connected()

    def test_fan_graph(self):
        g = gen.fan_graph(5)
        assert g.num_nodes == 6
        assert g.degree(0) == 5
        # Rim edges are much cheaper than spokes.
        assert g.weight(1, 2) < g.weight(0, 1)


class TestRandomFamilies:
    def test_gnp_connected_and_seeded(self):
        g1 = gen.random_connected_gnp(20, 0.15, seed=5)
        g2 = gen.random_connected_gnp(20, 0.15, seed=5)
        assert g1.is_connected()
        assert g1.edge_set() == g2.edge_set()

    def test_gnp_different_seeds_differ(self):
        g1 = gen.random_connected_gnp(20, 0.3, seed=1)
        g2 = gen.random_connected_gnp(20, 0.3, seed=2)
        assert g1.edge_set() != g2.edge_set()

    def test_gnp_weights_in_range(self):
        g = gen.random_connected_gnp(15, 0.4, seed=9, weight_low=1.0, weight_high=2.0)
        for _, _, w in g.edges():
            assert 1.0 <= w <= 2.0

    def test_gnp_p_validation(self):
        with pytest.raises(ValueError):
            gen.random_connected_gnp(5, 1.5)

    def test_geometric_connected(self):
        g = gen.random_geometric_graph(25, radius=0.2, seed=3)
        assert g.is_connected()
        assert g.num_nodes == 25

    def test_geometric_triangle_inequality_ish(self):
        # All weights are Euclidean distances within the unit square.
        g = gen.random_geometric_graph(20, radius=0.5, seed=4)
        for _, _, w in g.edges():
            assert 0.0 <= w <= 2.0**0.5 + 1e-12

    def test_tree_plus_chords(self):
        g = gen.random_tree_plus_chords(15, 5, seed=8)
        assert g.is_connected()
        assert g.num_edges >= 14
        assert g.num_edges <= 19
