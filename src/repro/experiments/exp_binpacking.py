"""E6 — Theorem 3: MST equilibria encode BIN PACKING solutions.

For a battery of strict instances the reduction graph has an equilibrium
MST exactly when the packing is solvable; on small graphs this is verified
*exhaustively* over all minimum spanning trees.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentResult
from repro.games.equilibrium import check_equilibrium
from repro.graphs.spanning_trees import enumerate_minimum_spanning_trees
from repro.hardness.binpacking_reduction import build_theorem3_instance
from repro.hardness.solvers import BinPackingInstance, solve_bin_packing_exact
from repro.utils.timing import Timer

#: (sizes, bins, capacity) — a mix of solvable and unsolvable strict cases.
DEFAULT_CASES = [
    ((2, 2, 2, 2), 2, 4),
    ((4, 4, 4), 2, 6),
    ((4, 2, 2, 4), 2, 6),
    ((6, 2, 4, 4), 2, 8),
    ((2, 2, 2, 2, 2, 2), 3, 4),
]


def run(seed: int = 0, cases=DEFAULT_CASES, exhaustive_limit: int = 600) -> ExperimentResult:
    rows = []
    all_match = True
    with Timer() as t:
        for sizes, bins_, cap in cases:
            packing = BinPackingInstance(sizes, bins_, cap)
            inst = build_theorem3_instance(packing)
            solvable = solve_bin_packing_exact(packing) is not None
            n_msts = 0
            eq_found = False
            for edges in enumerate_minimum_spanning_trees(
                inst.game.graph, limit=exhaustive_limit
            ):
                n_msts += 1
                if check_equilibrium(inst.game.tree_state(edges)).is_equilibrium:
                    eq_found = True
            all_match &= eq_found == solvable
            rows.append(
                {
                    "sizes": "+".join(map(str, sizes)),
                    "bins": bins_,
                    "capacity": cap,
                    "packing_solvable": solvable,
                    "msts_checked": n_msts,
                    "equilibrium_mst": eq_found,
                    "matches_thm3": eq_found == solvable,
                }
            )
    result = ExperimentResult(
        experiment_id="E6",
        title="Theorem 3: an MST equilibrium exists iff BIN PACKING is solvable",
        headline=(
            f"equivalence held on every instance: {all_match} "
            "(exhaustive over all minimum spanning trees)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
