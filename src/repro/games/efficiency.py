"""Exact price of stability / anarchy for broadcast games.

The paper defines the price of stability as (weight of the best equilibrium)
/ (optimal weight).  For broadcast games every equilibrium is WLOG a spanning
tree (cycle edges in an equilibrium have zero weight, Section 2), so on small
instances we can compute PoS/PoA *exactly* by enumerating spanning trees and
keeping those that pass the full equilibrium check — this is the ground truth
the Theorem 3/5 reduction experiments compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.games.broadcast import BroadcastGame, TreeState
from repro.games.equilibrium import check_equilibrium
from repro.games.game import Subsidies
from repro.graphs.graph import Edge
from repro.graphs.spanning_trees import enumerate_spanning_trees


def equilibrium_spanning_trees(
    game: BroadcastGame,
    subsidies: Optional[Subsidies] = None,
    limit: int | None = None,
) -> Iterator[TreeState]:
    """Yield every spanning-tree equilibrium of the (subsidized) game."""
    for edges in enumerate_spanning_trees(game.graph, limit=limit):
        state = game.tree_state(edges)
        if check_equilibrium(state, subsidies).is_equilibrium:
            yield state


@dataclass
class EfficiencyReport:
    """Exact efficiency metrics of a broadcast game."""

    opt_weight: float
    best_equilibrium_weight: Optional[float]
    worst_equilibrium_weight: Optional[float]
    n_equilibria: int
    n_trees: int

    @property
    def price_of_stability(self) -> Optional[float]:
        if self.best_equilibrium_weight is None or self.opt_weight == 0:
            return None
        return self.best_equilibrium_weight / self.opt_weight

    @property
    def price_of_anarchy(self) -> Optional[float]:
        if self.worst_equilibrium_weight is None or self.opt_weight == 0:
            return None
        return self.worst_equilibrium_weight / self.opt_weight


def efficiency_report(
    game: BroadcastGame,
    subsidies: Optional[Subsidies] = None,
) -> EfficiencyReport:
    """Enumerate all spanning trees and measure equilibrium efficiency.

    Exponential in general — intended for the small instances used in the
    hardness-reduction experiments and tests.
    """
    opt = game.mst_weight()
    best: Optional[float] = None
    worst: Optional[float] = None
    n_eq = 0
    n_trees = 0
    for edges in enumerate_spanning_trees(game.graph):
        n_trees += 1
        state = game.tree_state(edges)
        if check_equilibrium(state, subsidies).is_equilibrium:
            n_eq += 1
            w = state.social_cost()
            best = w if best is None else min(best, w)
            worst = w if worst is None else max(worst, w)
    return EfficiencyReport(opt, best, worst, n_eq, n_trees)


def price_of_stability(game: BroadcastGame, subsidies: Optional[Subsidies] = None) -> float:
    """Exact PoS by enumeration; raises when no tree equilibrium exists."""
    report = efficiency_report(game, subsidies)
    pos = report.price_of_stability
    if pos is None:
        raise ValueError("game has no spanning-tree equilibrium")
    return pos


def price_of_anarchy(game: BroadcastGame, subsidies: Optional[Subsidies] = None) -> float:
    """Exact PoA by enumeration; raises when no tree equilibrium exists."""
    report = efficiency_report(game, subsidies)
    poa = report.price_of_anarchy
    if poa is None:
        raise ValueError("game has no spanning-tree equilibrium")
    return poa


def best_equilibrium_tree(
    game: BroadcastGame,
    subsidies: Optional[Subsidies] = None,
) -> Tuple[Optional[List[Edge]], Optional[float]]:
    """Minimum-weight spanning-tree equilibrium (edges, weight) or (None, None)."""
    best_edges: Optional[List[Edge]] = None
    best_w: Optional[float] = None
    for state in equilibrium_spanning_trees(game, subsidies):
        w = state.social_cost()
        if best_w is None or w < best_w:
            best_w = w
            best_edges = state.edges
    return best_edges, best_w
