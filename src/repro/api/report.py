"""The canonical result type every registered solver returns.

Historically each solver family had its own result dataclass (``SNEResult``,
``AONResult``, ``SNDResult``, ``Theorem6Result``, ``CombinatorialSNEResult``)
with diverging field names and no shared notion of budget, certificate, or
timing.  :class:`SolveReport` is the one shape the :mod:`repro.api` facade
returns for all of them; method-specific bookkeeping (cutting-plane rounds,
branch-and-bound nodes, decomposition levels, ...) lives in ``metadata``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.graphs.graph import Edge
from repro.subsidies.assignment import SubsidyAssignment

#: tolerance for the budget == sum-of-subsidies invariant
_BUDGET_TOL = 1e-9


@dataclass
class SolveReport:
    """Canonical outcome of one solver run.

    Invariants (checked in ``__post_init__``):

    * ``budget_used`` equals ``subsidies.cost`` (up to round-off),
    * a ``verified`` report is necessarily ``feasible``.
    """

    #: canonical registry name of the solver that produced this report
    solver: str
    #: problem family: ``"sne"``, ``"aon-sne"`` or ``"snd"``
    problem: str
    #: the subsidy assignment (empty when infeasible)
    subsidies: SubsidyAssignment
    #: total subsidies spent (``b(E)``); always ``subsidies.cost``
    budget_used: float
    #: established edges of the target state (tree edges for broadcast)
    target_edges: Tuple[Edge, ...]
    #: ``wgt`` of the target edges (social cost of the enforced state)
    target_cost: float
    #: the solver produced a valid assignment for the instance
    feasible: bool
    #: the exact equilibrium checker certified the subsidized target state
    verified: bool
    #: the solver proved optimality (vs. heuristic / incomplete search)
    optimal: bool
    #: method-specific bookkeeping; values must stay JSON-serializable
    metadata: Dict[str, object] = field(default_factory=dict)
    #: wall-clock seconds spent inside the adapter
    wall_clock_seconds: float = 0.0

    def __post_init__(self) -> None:
        gap = abs(self.budget_used - self.subsidies.cost)
        if gap > _BUDGET_TOL * max(1.0, abs(self.budget_used)):
            raise ValueError(
                f"budget_used {self.budget_used!r} != subsidies.cost "
                f"{self.subsidies.cost!r}"
            )
        if self.verified and not self.feasible:
            raise ValueError("a verified report must be feasible")

    # -- derived quantities -------------------------------------------------

    def fraction_of_target(self) -> float:
        """Subsidy cost as a fraction of ``wgt(T)`` (0 for empty targets)."""
        return self.budget_used / self.target_cost if self.target_cost > 0 else 0.0

    def comparable(self) -> Dict[str, object]:
        """Everything except wall-clock time, as plain data.

        Two runs of a deterministic solver on the same instance agree on
        this dict; ``solve_many`` tests use it to check parallel == serial.
        """
        return {
            "solver": self.solver,
            "problem": self.problem,
            "subsidies": {e: b for e, b in self.subsidies.items()},
            "budget_used": self.budget_used,
            "target_edges": tuple(self.target_edges),
            "target_cost": self.target_cost,
            "feasible": self.feasible,
            "verified": self.verified,
            "optimal": self.optimal,
            "metadata": dict(self.metadata),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolveReport):
            return NotImplemented
        return self.comparable() == other.comparable()

    def summary(self) -> str:
        """One-line human rendering (used by the CLI's text output)."""
        status = "verified" if self.verified else ("feasible" if self.feasible else "INFEASIBLE")
        tag = "exact" if self.optimal else "heuristic"
        return (
            f"[{self.solver}] {self.problem}: budget {self.budget_used:.6g} "
            f"on target wgt {self.target_cost:.6g} "
            f"({self.fraction_of_target():.1%}) — {status}, {tag}, "
            f"{self.wall_clock_seconds * 1e3:.1f} ms"
        )
