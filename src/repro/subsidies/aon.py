"""All-or-nothing STABLE NETWORK ENFORCEMENT (Section 5).

The paper proves the optimization version inapproximable within any factor
(Theorem 12), so we provide:

* :func:`solve_aon_sne_exact` — exact branch & bound over the subsidize /
  don't-subsidize decisions, with the fractional LP (3) relaxation as the
  lower bound (sound because relaxing integrality can only reduce cost);
* :func:`greedy_aon_sne` — the least-crowded-edge greedy heuristic
  suggested by the packing idea of Theorem 6 (fully subsidizing everything
  always works, so it terminates).

Both are broadcast-specific, matching the paper's Section 5 scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.graph import Edge
from repro.lp import LPStatus, solve_lp
from repro.games.broadcast import TreeState
from repro.games.equilibrium import check_equilibrium
from repro.subsidies.assignment import SubsidyAssignment
from repro.subsidies.sne_lp import build_broadcast_lp3
from repro.utils.tolerances import LP_TOL


@dataclass
class AONResult:
    """Outcome of an all-or-nothing SNE solve."""

    subsidies: SubsidyAssignment
    cost: float
    #: True when branch & bound ran to completion (proved optimality).
    optimal: bool
    verified: bool
    nodes_explored: int = 0
    method: str = "branch_and_bound"


def _full_baseline(state: TreeState) -> Tuple[SubsidyAssignment, float]:
    """Fully subsidizing every positive tree edge always enforces T."""
    graph = state.game.graph
    positive = [e for e in state.edges if graph.weight(*e) > 0]
    sub = SubsidyAssignment.full_on(graph, positive)
    return sub, sub.cost


def solve_aon_sne_exact(
    state: TreeState,
    method: str = "highs",
    max_nodes: int = 100_000,
    tol: float = 1e-6,
) -> AONResult:
    """Exact minimum-cost all-or-nothing enforcement via branch & bound.

    Search nodes fix each tree edge to "fully subsidized" or "unsubsidized";
    the LP (3) relaxation with those bounds provides the pruning lower bound.
    Branching picks the most fractional variable, subsidize-branch first.
    When ``max_nodes`` is exhausted the best incumbent is returned with
    ``optimal=False``.
    """
    graph = state.game.graph
    lp, edges = build_broadcast_lp3(state)
    weights = np.array([graph.weight(*e) for e in edges])
    n = len(edges)
    base_lower = lp.lower.copy()
    base_upper = lp.upper.copy()

    best_sub, best_cost = _full_baseline(state)
    # A zero-cost check first: maybe T needs no subsidies at all.
    if check_equilibrium(state, tol=LP_TOL).is_equilibrium:
        return AONResult(
            SubsidyAssignment.zero(graph), 0.0, True, True, nodes_explored=0
        )

    positive_idx = [i for i in range(n) if weights[i] > 0]

    def lp_bound(fixed1: FrozenSet[int], fixed0: FrozenSet[int]):
        lower = base_lower.copy()
        upper = base_upper.copy()
        for i in fixed1:
            lower[i] = weights[i]
        for i in fixed0:
            upper[i] = 0.0
        lp.lower, lp.upper = lower, upper
        return solve_lp(lp, method=method)

    def integral_candidate(x: np.ndarray) -> Optional[Set[int]]:
        chosen: Set[int] = set()
        for i in positive_idx:
            w = weights[i]
            if x[i] >= w - tol * max(1.0, w):
                chosen.add(i)
            elif x[i] > tol * max(1.0, w):
                return None
        return chosen

    nodes_explored = 0
    # DFS stack of (fixed-to-w, fixed-to-0) index sets.
    stack: List[Tuple[FrozenSet[int], FrozenSet[int]]] = [(frozenset(), frozenset())]
    complete = True

    while stack:
        if nodes_explored >= max_nodes:
            complete = False
            break
        fixed1, fixed0 = stack.pop()
        nodes_explored += 1
        committed = float(weights[list(fixed1)].sum()) if fixed1 else 0.0
        if committed >= best_cost - tol:
            continue
        res = lp_bound(fixed1, fixed0)
        if res.status is not LPStatus.OPTIMAL:
            continue  # infeasible subtree
        assert res.x is not None and res.objective is not None
        if res.objective >= best_cost - tol:
            continue
        chosen = integral_candidate(res.x)
        if chosen is not None:
            cand = SubsidyAssignment.full_on(graph, [edges[i] for i in chosen])
            if (
                cand.cost < best_cost - tol
                and check_equilibrium(state, cand, tol=LP_TOL).is_equilibrium
            ):
                best_cost = cand.cost
                best_sub = cand
            continue
        # Branch on the most fractional positive-weight variable.
        frac_scores = [
            (min(res.x[i], weights[i] - res.x[i]) / max(1.0, weights[i]), i)
            for i in positive_idx
            if i not in fixed1 and i not in fixed0
        ]
        if not frac_scores:
            continue
        _, pick = max(frac_scores)
        # LIFO: push the 0-branch first so the subsidize-branch runs first.
        stack.append((fixed1, fixed0 | {pick}))
        stack.append((fixed1 | {pick}, fixed0))

    lp.lower, lp.upper = base_lower, base_upper  # restore for reuse
    verified = check_equilibrium(state, best_sub, tol=LP_TOL).is_equilibrium
    return AONResult(best_sub, best_cost, complete, verified, nodes_explored)


def greedy_aon_sne(state: TreeState, max_steps: Optional[int] = None) -> AONResult:
    """Greedy all-or-nothing enforcement: fix violations least-crowded-first.

    While some player has an improving deviation, fully subsidize the
    cheapest-per-relief unsubsidized edge on her tree path — the edge
    maximizing (cost reduction)/(subsidy spent) = ``1 / n_a``, i.e. the
    least crowded one (mirroring the Theorem 6 packing rule).  Terminates
    because each step subsidizes one more edge and the all-subsidized
    assignment is an equilibrium.
    """
    game = state.game
    graph = game.graph
    chosen: Set[Edge] = set()
    limit = max_steps if max_steps is not None else len(state.edges) + 1

    for _ in range(limit):
        sub = SubsidyAssignment.full_on(graph, chosen)
        report = check_equilibrium(state, sub, tol=LP_TOL)
        if report.is_equilibrium:
            return AONResult(sub, sub.cost, False, True, method="greedy")
        node = report.deviations[0].player
        path = state.tree.path_to_root(node)
        candidates = [
            e for e in path if e not in chosen and graph.weight(*e) > 0
        ]
        if not candidates:
            # Nothing on this path left to subsidize: the deviation must be
            # cost-equal noise; fall back to the full baseline.
            break
        # Least crowded first; ties by cheaper weight, then canonical order.
        chosen.add(
            min(candidates, key=lambda e: (state.loads[e], graph.weight(*e), repr(e)))
        )

    sub, cost = _full_baseline(state)
    return AONResult(sub, cost, False, True, method="greedy")
