"""JSON (de)serialization for graphs, games, subsidies and solve reports.

Instances and results can cross process / service boundaries: every
``*_to_json`` returns a plain JSON-compatible dict, and the matching
``*_from_json`` reconstructs an equal object (accepting either the dict or
its ``json.dumps`` string).  Python's ``json`` round-trips floats exactly
(shortest-repr), so costs and subsidies survive bit-for-bit.

Graph nodes are arbitrary hashables in this codebase (the hardness gadgets
use tuples and strings), so nodes are encoded as small tagged lists::

    5            -> ["i", 5]          "s3"   -> ["s", "s3"]
    2.5          -> ["f", 2.5]        True   -> ["b", true]
    None         -> ["z"]             (u, v) -> ["t", [enc(u), enc(v)]]
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.games.broadcast import BroadcastGame
from repro.games.game import NetworkDesignGame
from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.subsidies.assignment import SubsidyAssignment
from repro.api.report import SolveReport

JSONDict = Dict[str, Any]
AnyGame = Union[BroadcastGame, NetworkDesignGame]


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------


def encode_node(node: Node) -> List[Any]:
    """Encode one node as a tagged JSON list."""
    if node is None:
        return ["z"]
    if isinstance(node, bool):  # before int: bool is an int subclass
        return ["b", node]
    if isinstance(node, (int, np.integer)):  # numpy labels from the generators
        return ["i", int(node)]
    if isinstance(node, (float, np.floating)):
        return ["f", float(node)]
    if isinstance(node, str):
        return ["s", node]
    if isinstance(node, tuple):
        return ["t", [encode_node(x) for x in node]]
    raise TypeError(f"cannot JSON-encode node of type {type(node).__name__}: {node!r}")


def decode_node(data: List[Any]) -> Node:
    """Inverse of :func:`encode_node`."""
    tag = data[0]
    if tag == "z":
        return None
    if tag in ("b", "i", "f", "s"):
        return data[1]
    if tag == "t":
        return tuple(decode_node(x) for x in data[1])
    raise ValueError(f"unknown node tag {tag!r}")


def _encode_edge(edge: Edge) -> List[Any]:
    u, v = canonical_edge(*edge)
    return [encode_node(u), encode_node(v)]


def _decode_edge(data: List[Any]) -> Edge:
    return canonical_edge(decode_node(data[0]), decode_node(data[1]))


def _as_dict(data: Union[str, JSONDict], expected_kind: str) -> JSONDict:
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise ValueError(f"expected a JSON object for {expected_kind!r}")
    kind = data.get("kind")
    if kind != expected_kind:
        raise ValueError(f"expected kind {expected_kind!r}, got {kind!r}")
    return data


# ---------------------------------------------------------------------------
# Graphs
# ---------------------------------------------------------------------------


def graph_to_json(graph: Graph) -> JSONDict:
    return {
        "kind": "graph",
        "nodes": [encode_node(u) for u in graph.nodes],
        "edges": [[encode_node(u), encode_node(v), w] for u, v, w in graph.edges()],
    }


def graph_from_json(data: Union[str, JSONDict]) -> Graph:
    data = _as_dict(data, "graph")
    g = Graph()
    for enc in data["nodes"]:
        g.add_node(decode_node(enc))
    for enc_u, enc_v, w in data["edges"]:
        g.add_edge(decode_node(enc_u), decode_node(enc_v), w)
    return g


# ---------------------------------------------------------------------------
# Games
# ---------------------------------------------------------------------------


def game_to_json(game: AnyGame) -> JSONDict:
    """Serialize either game model (dispatch on type)."""
    if isinstance(game, BroadcastGame):
        return {
            "kind": "broadcast-game",
            "graph": graph_to_json(game.graph),
            "root": encode_node(game.root),
            "multiplicity": [
                [encode_node(u), k] for u, k in game.multiplicity.items()
            ],
        }
    if isinstance(game, NetworkDesignGame):
        return {
            "kind": "network-design-game",
            "graph": graph_to_json(game.graph),
            "pairs": [
                [encode_node(p.source), encode_node(p.target)] for p in game.players
            ],
        }
    raise TypeError(f"cannot serialize game of type {type(game).__name__}")


def game_from_json(data: Union[str, JSONDict]) -> AnyGame:
    """Reconstruct a game of either model (dispatch on ``kind``)."""
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise ValueError("expected a JSON object for a game")
    kind = data.get("kind")
    if kind == "broadcast-game":
        graph = graph_from_json(data["graph"])
        multiplicity = {decode_node(enc): k for enc, k in data["multiplicity"]}
        return BroadcastGame(graph, decode_node(data["root"]), multiplicity)
    if kind == "network-design-game":
        graph = graph_from_json(data["graph"])
        pairs = [(decode_node(s), decode_node(t)) for s, t in data["pairs"]]
        return NetworkDesignGame(graph, pairs)
    raise ValueError(f"unknown game kind {kind!r}")


# ---------------------------------------------------------------------------
# Subsidies
# ---------------------------------------------------------------------------


def subsidies_to_json(subsidies: SubsidyAssignment) -> JSONDict:
    return {
        "kind": "subsidies",
        "values": [[*_encode_edge(e), b] for e, b in subsidies.items()],
    }


def subsidies_from_json(data: Union[str, JSONDict], graph: Graph) -> SubsidyAssignment:
    data = _as_dict(data, "subsidies")
    values: Dict[Edge, float] = {}
    for enc_u, enc_v, b in data["values"]:
        values[canonical_edge(decode_node(enc_u), decode_node(enc_v))] = b
    return SubsidyAssignment(graph, values)


# ---------------------------------------------------------------------------
# Solve reports
# ---------------------------------------------------------------------------


def report_to_json(report: SolveReport) -> JSONDict:
    """Serialize a report (self-contained: embeds the instance graph)."""
    return {
        "kind": "solve-report",
        "graph": graph_to_json(report.subsidies.graph),
        "solver": report.solver,
        "problem": report.problem,
        "subsidies": subsidies_to_json(report.subsidies),
        "budget_used": report.budget_used,
        "target_edges": [_encode_edge(e) for e in report.target_edges],
        "target_cost": report.target_cost,
        "feasible": report.feasible,
        "verified": report.verified,
        "optimal": report.optimal,
        "metadata": dict(report.metadata),
        "wall_clock_seconds": report.wall_clock_seconds,
    }


def report_from_json(data: Union[str, JSONDict]) -> SolveReport:
    data = _as_dict(data, "solve-report")
    graph = graph_from_json(data["graph"])
    return SolveReport(
        solver=data["solver"],
        problem=data["problem"],
        subsidies=subsidies_from_json(data["subsidies"], graph),
        budget_used=data["budget_used"],
        target_edges=tuple(_decode_edge(e) for e in data["target_edges"]),
        target_cost=data["target_cost"],
        feasible=data["feasible"],
        verified=data["verified"],
        optimal=data["optimal"],
        metadata=dict(data["metadata"]),
        wall_clock_seconds=data["wall_clock_seconds"],
    )


# ---------------------------------------------------------------------------
# Convenience string front-ends
# ---------------------------------------------------------------------------


def dumps(obj: Union[Graph, AnyGame, SolveReport, SubsidyAssignment], **kwargs: Any) -> str:
    """``json.dumps`` any serializable object (dispatch on type)."""
    if isinstance(obj, Graph):
        payload: Mapping[str, Any] = graph_to_json(obj)
    elif isinstance(obj, (BroadcastGame, NetworkDesignGame)):
        payload = game_to_json(obj)
    elif isinstance(obj, SolveReport):
        payload = report_to_json(obj)
    elif isinstance(obj, SubsidyAssignment):
        payload = subsidies_to_json(obj)
    else:
        raise TypeError(f"cannot serialize object of type {type(obj).__name__}")
    return json.dumps(payload, **kwargs)


_LOADERS = {
    "graph": graph_from_json,
    "broadcast-game": game_from_json,
    "network-design-game": game_from_json,
    "solve-report": report_from_json,
}


def loads(text: Union[str, JSONDict]) -> Union[Graph, AnyGame, SolveReport]:
    """Inverse of :func:`dumps` for self-contained payloads.

    Subsidies are not self-contained (they validate against a graph), so
    use :func:`subsidies_from_json` for those.
    """
    data = json.loads(text) if isinstance(text, str) else text
    kind = data.get("kind") if isinstance(data, dict) else None
    if kind not in _LOADERS:
        raise ValueError(f"cannot deserialize payload of kind {kind!r}")
    return _LOADERS[kind](data)
