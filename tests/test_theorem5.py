"""Tests for the Theorem 5 reduction (3-regular IS -> PoS hardness)."""

import pytest

from repro.bounds.constants import theorem5_no_weight, theorem5_yes_weight
from repro.games import check_equilibrium
from repro.games.equilibrium import best_deviation_from_tree
from repro.hardness.independent_set import (
    build_theorem5_instance,
    classify_branch,
    equilibrium_weight,
    best_equilibrium_weight_via_mis,
    independent_set_from_tree,
    tree_from_independent_set,
)
from repro.hardness.solvers import (
    complete_graph_k4,
    k33_graph,
    max_independent_set,
    petersen_graph,
    prism_graph,
)
from repro.graphs import Graph


@pytest.fixture(scope="module")
def k4_instance():
    return build_theorem5_instance(complete_graph_k4())


class TestConstruction:
    def test_structure(self, k4_instance):
        inst = k4_instance
        # 1 root + n U-nodes + 3n/2 V-nodes.
        assert inst.game.graph.num_nodes == 1 + 4 + 6
        # n + 3n/2 unit edges + 2 * 3n/2 incidence edges.
        assert inst.game.graph.num_edges == 10 + 12

    def test_rejects_non_cubic(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        with pytest.raises(ValueError):
            build_theorem5_instance(g)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            build_theorem5_instance(complete_graph_k4(), delta=0.2)

    def test_incidence_weight(self, k4_instance):
        inst = k4_instance
        v_node = next(iter(inst.v_nodes.values()))
        u_neighbors = [u for u in inst.game.graph.neighbors(v_node) if u != "r"]
        w = inst.game.graph.weight(v_node, u_neighbors[0])
        assert w == pytest.approx((2 + inst.delta) / 3)


class TestForwardDirection:
    """Independent set -> equilibrium of weight 5n/2 - (1-delta)m."""

    @pytest.mark.parametrize(
        "make_h", [complete_graph_k4, k33_graph, petersen_graph, prism_graph]
    )
    def test_mis_tree_is_equilibrium_with_formula_weight(self, make_h):
        inst = build_theorem5_instance(make_h())
        mis = max_independent_set(inst.source)
        state = tree_from_independent_set(inst, mis)
        assert check_equilibrium(state).is_equilibrium
        assert state.social_cost() == pytest.approx(
            equilibrium_weight(inst, len(mis))
        )

    def test_every_subset_of_mis_also_works(self, k4_instance):
        inst = k4_instance
        # m = 0 (all type-A branches) and m = 1.
        for m_set in ([], [0]):
            state = tree_from_independent_set(inst, m_set)
            assert check_equilibrium(state).is_equilibrium
            assert state.social_cost() == pytest.approx(
                equilibrium_weight(inst, len(m_set))
            )

    def test_rejects_dependent_set(self, k4_instance):
        with pytest.raises(ValueError):
            tree_from_independent_set(k4_instance, [0, 1])  # adjacent in K4

    def test_roundtrip(self, k4_instance):
        state = tree_from_independent_set(k4_instance, [2])
        assert independent_set_from_tree(k4_instance, state) == {2}


class TestBackwardDirection:
    """Non-A/B branches are never stable (the C/D/E case analysis)."""

    def test_type_c_branch_unstable(self, k4_instance):
        inst = k4_instance
        # U0 connected to only ONE of its V neighbors: a type-C branch.
        h_edges = list(inst.source.edges())
        u0 = inst.u_nodes[0]
        v_first = inst.v_nodes[frozenset((0, 1))]
        edges = [("r", u0), (u0, v_first)]
        for v, u_node in inst.u_nodes.items():
            if v != 0:
                edges.append(("r", u_node))
        for key, v_node in inst.v_nodes.items():
            if v_node != v_first:
                edges.append(("r", v_node))
        state = inst.game.tree_state(edges)
        assert classify_branch(inst, state, u0) == "C"
        # The leaf of the C branch prefers its direct unit edge.
        dev = best_deviation_from_tree(state, v_first)
        assert dev.deviation_cost < dev.current_cost - 1e-12

    def test_type_d_branch_unstable(self, k4_instance):
        inst = k4_instance
        # r - V(0,1) - U0 - V(0,2): depth 3, type D.
        v01 = inst.v_nodes[frozenset((0, 1))]
        v02 = inst.v_nodes[frozenset((0, 2))]
        u0 = inst.u_nodes[0]
        edges = [("r", v01), (v01, u0), (u0, v02)]
        for v, u_node in inst.u_nodes.items():
            if v != 0:
                edges.append(("r", u_node))
        for key, v_node in inst.v_nodes.items():
            if v_node not in (v01, v02):
                edges.append(("r", v_node))
        state = inst.game.tree_state(edges)
        assert classify_branch(inst, state, v01) == "D"
        assert not check_equilibrium(state).is_equilibrium

    def test_branch_classifier_a_and_b(self, k4_instance):
        inst = k4_instance
        state = tree_from_independent_set(inst, [3])
        assert classify_branch(inst, state, inst.u_nodes[3]) == "B"
        assert classify_branch(inst, state, inst.u_nodes[0]) == "A"


class TestExhaustiveK4:
    def test_all_54000_trees(self, k4_instance):
        """Ground truth for Theorem 5 on K4: enumerate *every* spanning tree
        of the reduction graph (54,000) and verify the paper's structure:

        * exactly 5 equilibria — one per independent set of K4 (the empty
          set and the four singletons; K4 has MIS = 1);
        * every equilibrium consists solely of type-A/B branches;
        * the best equilibrium weight matches 5n/2 - (1-delta)*MIS.

        ~20 s; this is the single most expensive test in the suite and the
        strongest evidence the reduction is implemented correctly.
        """
        from repro.graphs.spanning_trees import enumerate_spanning_trees

        inst = k4_instance
        equilibria = []
        for edges in enumerate_spanning_trees(inst.game.graph):
            state = inst.game.tree_state(edges)
            if check_equilibrium(state).is_equilibrium:
                equilibria.append(state)
        assert len(equilibria) == 5
        weights = sorted(s.social_cost() for s in equilibria)
        assert weights[0] == pytest.approx(equilibrium_weight(inst, 1))
        assert weights[-1] == pytest.approx(equilibrium_weight(inst, 0))
        for state in equilibria:
            for top in state.tree.children[inst.root]:
                assert classify_branch(inst, state, top) in ("A", "B")
            m_set = independent_set_from_tree(inst, state)
            assert state.social_cost() == pytest.approx(
                equilibrium_weight(inst, len(m_set))
            )


class TestPoSNumbers:
    def test_best_equilibrium_via_mis(self):
        for make_h in (complete_graph_k4, k33_graph, prism_graph):
            inst = build_theorem5_instance(make_h())
            best = best_equilibrium_weight_via_mis(inst)
            mis = len(max_independent_set(inst.source))
            assert best == pytest.approx(equilibrium_weight(inst, mis))

    def test_gap_constants(self):
        """The Berman-Karpinski YES/NO weights per k are separated."""
        for eps in (0.01, 0.1):
            for delta in (0.01, 1 / 12):
                yes = theorem5_yes_weight(1, delta, eps)
                no = theorem5_no_weight(1, delta, eps)
                assert yes < no
        # Ratio tends to 571/570 as eps, delta -> 0.
        assert theorem5_no_weight(1, 1e-9, 1e-9) / theorem5_yes_weight(
            1, 1e-9, 1e-9
        ) == pytest.approx(571 / 570, abs=1e-6)

    def test_formula_matches_construction(self, k4_instance):
        inst = k4_instance
        n = inst.n
        for m in (0, 1):
            state = tree_from_independent_set(inst, list(range(m)))
            assert state.social_cost() == pytest.approx(2.5 * n - (1 - inst.delta) * m)
