"""``repro.api`` — the single public entry point for solving subsidy problems.

The paper's solvers (LP formulations (1)-(3), the Theorem 6 constructive
algorithm, all-or-nothing SNE, SND design, the combinatorial water-filler)
live behind one declarative registry:

>>> from repro import api
>>> [s.name for s in api.list_solvers()]          # doctest: +SKIP
>>> report = api.solve(game, solver="sne-lp3")    # doctest: +SKIP
>>> api.serialize.report_to_json(report)          # doctest: +SKIP

* :func:`solve` / :func:`solve_many` — uniform (batch) execution,
* :func:`register_solver` / :func:`get_solver` / :func:`list_solvers` — the
  :class:`SolverSpec` registry,
* :class:`SolveReport` — the canonical result every solver returns,
* :mod:`repro.api.serialize` — JSON round-trips for graphs, games,
  subsidies and reports.
"""

from repro.api.registry import (
    SolverSpec,
    UnknownSolverError,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
)
from repro.api.report import SolveReport
from repro.api import adapters  # noqa: F401  (registers the built-in solvers)
from repro.api.facade import solve, solve_many
from repro.api import serialize

__all__ = [
    "SolverSpec",
    "SolveReport",
    "UnknownSolverError",
    "get_solver",
    "list_solvers",
    "register_solver",
    "solver_names",
    "solve",
    "solve_many",
    "serialize",
]
