"""Dense two-phase primal simplex, built from scratch.

This is the reference LP solver the cutting-plane driver was developed
against; production solves go through scipy's HiGHS (see
:mod:`repro.lp.backend`).  The implementation is a textbook tableau method:

* finite lower/upper variable bounds are compiled into shift + extra rows,
  so the core solves ``min c.x : A x <= b, x >= 0``;
* rows with negative right-hand side get artificial variables and a phase-1
  feasibility solve;
* pivoting uses Dantzig's rule with an automatic switch to Bland's rule
  (which guarantees termination) once the iteration count gets large.

:class:`WarmSimplex` is the basis-resuming entry point the incremental
cutting-plane path uses: the first solve runs the same two-phase method
(identical pivot sequence, hence identical answers) but keeps the final
tableau alive; appended cut rows enter with their slack basic, and the next
solve restores primal feasibility with *dual*-simplex pivots from the
previous optimal basis instead of starting over.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.lp.problem import LinearProgram, LPResult, LPStatus

_PIVOT_EPS = 1e-10


def _compile_standard_form(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Shift out lower bounds and compile finite upper bounds into rows.

    The one compilation pipeline behind both :func:`simplex_solve` and
    :class:`WarmSimplex` — sharing it is what makes the warm path's
    "identical cold answers" contract hold by construction.  Returns
    ``(A', b', shift, m)`` for the shifted problem
    ``min c.x' : A' x' <= b', x' >= 0`` with ``x = x' + shift``.
    """
    shift = lower
    b = b - A @ shift if A.size else b
    ub_shifted = upper - lower

    # Finite upper bounds become rows  x'_j <= u_j.
    finite_ub = np.where(np.isfinite(ub_shifted))[0]
    if finite_ub.size:
        ub_rows = np.zeros((finite_ub.size, len(c)))
        ub_rows[np.arange(finite_ub.size), finite_ub] = 1.0
        A = np.vstack([A, ub_rows]) if A.size else ub_rows
        b = np.concatenate([b, ub_shifted[finite_ub]])

    m = A.shape[0] if A.size else 0
    return A, b, shift, m


def simplex_solve(problem: LinearProgram, max_iter: int = 20_000) -> LPResult:
    """Solve a :class:`LinearProgram` with the two-phase tableau simplex."""
    A, b = problem.matrices()
    c = problem.c.copy()
    lower = problem.lower.copy()
    upper = problem.upper.copy()

    if np.any(np.isinf(lower)):
        raise ValueError("simplex_solve requires finite lower bounds")

    # Shift x' = x - lower so all variables are >= 0.
    A, b, shift, m = _compile_standard_form(A, b, c, lower, upper)
    if m == 0:
        # Unconstrained besides x >= 0: optimum at 0 unless some c_j < 0.
        if np.any(c < -_PIVOT_EPS):
            return LPResult(LPStatus.UNBOUNDED)
        return LPResult(
            LPStatus.OPTIMAL, x=shift.copy(), objective=float(c @ shift)
        )

    status, x_shifted = _two_phase(A, b, c, max_iter)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status)
    x = x_shifted + shift
    return LPResult(LPStatus.OPTIMAL, x=x, objective=float(problem.c @ x))


def _two_phase(
    A: np.ndarray, b: np.ndarray, c: np.ndarray, max_iter: int
) -> Tuple[LPStatus, Optional[np.ndarray]]:
    """Solve min c.x : A x <= b, x >= 0 (b may be negative)."""
    status, tableau = _two_phase_tableau(A, b, c, max_iter)
    if status is not LPStatus.OPTIMAL or tableau is None:
        return status, None
    T, rhs, basis, _ = tableau
    x = np.zeros(T.shape[1])
    x[basis] = rhs
    return LPStatus.OPTIMAL, x[: A.shape[1]]


def _pivot(T: np.ndarray, rhs: np.ndarray, row: int, col: int, basis: np.ndarray) -> None:
    piv = T[row, col]
    T[row] /= piv
    rhs[row] /= piv
    for i in range(T.shape[0]):
        if i != row and abs(T[i, col]) > _PIVOT_EPS:
            factor = T[i, col]
            T[i] -= factor * T[row]
            rhs[i] -= factor * rhs[row]
    basis[row] = col


def _run_simplex(
    T: np.ndarray,
    rhs: np.ndarray,
    obj: np.ndarray,
    basis: np.ndarray,
    max_iter: int,
    frozen: Optional[set] = None,
) -> Tuple[LPStatus, float]:
    """Iterate pivots in place; returns (status, objective value)."""
    m, total = T.shape
    bland_after = max(200, 5 * total)
    for it in range(max_iter):
        # Reduced costs: r = obj - obj_B . T   (computed densely).
        y = obj[basis]
        reduced = obj - y @ T
        if frozen:
            reduced = reduced.copy()
            reduced[list(frozen)] = 0.0
        if it < bland_after:
            col = int(np.argmin(reduced))
            if reduced[col] >= -1e-9:
                return LPStatus.OPTIMAL, float(y @ rhs)
        else:
            candidates = np.where(reduced < -1e-9)[0]
            if candidates.size == 0:
                return LPStatus.OPTIMAL, float(y @ rhs)
            col = int(candidates[0])  # Bland: lowest index
        column = T[:, col]
        positive = column > _PIVOT_EPS
        if not positive.any():
            return LPStatus.UNBOUNDED, float("nan")
        ratios = np.full(m, np.inf)
        ratios[positive] = rhs[positive] / column[positive]
        row = int(np.argmin(ratios))
        if it >= bland_after:
            # Bland's rule also needs lowest basis index among tied rows.
            best = ratios[row]
            tied = np.where(np.abs(ratios - best) <= 1e-12)[0]
            row = int(min(tied, key=lambda i: basis[i]))
        _pivot(T, rhs, row, col, basis)
    return LPStatus.ITERATION_LIMIT, float("nan")


# ---------------------------------------------------------------------------
# Warm-started re-solves (the cutting-plane fast path)
# ---------------------------------------------------------------------------


def _dual_simplex(
    T: np.ndarray,
    rhs: np.ndarray,
    obj: np.ndarray,
    basis: np.ndarray,
    max_iter: int,
    frozen: Optional[List[int]] = None,
) -> LPStatus:
    """Restore primal feasibility of a dual-feasible tableau in place.

    The classic dual-simplex step: pick the most negative basic value,
    leave on that row, and enter the column minimizing the reduced-cost
    ratio (ties break to the lowest index, which keeps the pivot choice
    deterministic).  ``frozen`` columns (retired phase-1 artificials) are
    never eligible.  Returns OPTIMAL once every basic value is
    nonnegative, INFEASIBLE when a negative row has no negative entry —
    that row then certifies an empty feasible region regardless of the
    objective — and ITERATION_LIMIT when the pivot budget runs out
    (callers fall back to a cold solve).
    """
    for _ in range(max_iter):
        row = int(np.argmin(rhs))
        if rhs[row] >= -1e-9:
            return LPStatus.OPTIMAL
        rowvals = T[row]
        eligible = rowvals < -_PIVOT_EPS
        if frozen:
            eligible[frozen] = False
        if not eligible.any():
            return LPStatus.INFEASIBLE
        y = obj[basis]
        reduced = obj - y @ T
        # The previous solve left reduced >= -1e-9; clip the noise so the
        # ratio test never sees a (spuriously) negative numerator.
        np.maximum(reduced, 0.0, out=reduced)
        ratios = np.full(T.shape[1], np.inf)
        ratios[eligible] = reduced[eligible] / -rowvals[eligible]
        col = int(np.argmin(ratios))
        _pivot(T, rhs, row, col, basis)
    return LPStatus.ITERATION_LIMIT


class WarmSimplex:
    """A bounded LP whose tableau survives across cut-appending re-solves.

    The problem starts as ``min c.x : l <= x <= u`` and accumulates rows
    ``a.x <= b`` over time (the cutting-plane driver's access pattern).
    The first :meth:`solve` compiles bounds and rows exactly like
    :func:`simplex_solve` — same normalization, same two-phase pivots,
    same answers — but keeps the final tableau, basis and rhs.  Rows added
    afterwards are priced into the tableau directly (slack basic, basic
    columns eliminated), and the next :meth:`solve` resumes from the
    previous optimal basis via :func:`_dual_simplex` plus a primal polish
    pass, which typically costs a handful of pivots instead of a full
    re-solve.  Any non-optimal warm outcome falls back to the cold path,
    so results never depend on the warm machinery succeeding.
    """

    def __init__(
        self,
        n_vars: int,
        c: np.ndarray,
        lower: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
        max_iter: int = 20_000,
    ) -> None:
        self.n_vars = n_vars
        self.c = np.asarray(c, dtype=float)
        if self.c.shape != (n_vars,):
            raise ValueError(f"objective has shape {self.c.shape}, expected ({n_vars},)")
        self.lower = np.zeros(n_vars) if lower is None else np.asarray(lower, dtype=float)
        self.upper = (
            np.full(n_vars, np.inf) if upper is None else np.asarray(upper, dtype=float)
        )
        if np.any(np.isinf(self.lower)):
            raise ValueError("WarmSimplex requires finite lower bounds")
        self.max_iter = max_iter
        #: every row ever added, in original variable space (cold fallback)
        self._rows: List[np.ndarray] = []
        self._rhs: List[float] = []
        #: rows already priced into the live tableau
        self._compiled_rows = 0
        # live tableau state (None until an optimal cold solve built one)
        self._T: Optional[np.ndarray] = None
        self._trhs: Optional[np.ndarray] = None
        self._basis: Optional[np.ndarray] = None
        self._frozen: List[int] = []
        self._last: Optional[LPResult] = None

    # -- row accumulation ---------------------------------------------------

    def add_row(self, coeffs: Sequence[float], rhs: float) -> None:
        """Append the cut ``coeffs . x <= rhs``."""
        row = np.asarray(coeffs, dtype=float)
        if row.shape != (self.n_vars,):
            raise ValueError(f"row has shape {row.shape}, expected ({self.n_vars},)")
        self._rows.append(row)
        self._rhs.append(float(rhs))
        self._last = None

    # -- solving ------------------------------------------------------------

    def solve(self) -> Tuple[LPResult, bool]:
        """Solve the current LP; returns ``(result, warm_started)``."""
        if self._last is not None:
            return self._last, True
        if self._T is not None:
            result = self._warm_solve()
            if result is not None:
                self._last = result
                return result, True
            # warm resolve hit its pivot budget: rebuild from scratch
            self._reset_tableau()
        result = self._cold_solve()
        self._last = result
        return result, False

    # -- internals ----------------------------------------------------------

    def _reset_tableau(self) -> None:
        self._T = None
        self._trhs = None
        self._basis = None
        self._frozen = []
        self._compiled_rows = 0

    def _problem(self) -> LinearProgram:
        lp = LinearProgram(
            n_vars=self.n_vars,
            c=self.c.copy(),
            lower=self.lower.copy(),
            upper=self.upper.copy(),
        )
        for row, rhs in zip(self._rows, self._rhs):
            lp.add_constraint(row, rhs)
        return lp

    def _cold_solve(self) -> LPResult:
        """From-scratch two-phase solve that leaves the tableau resumable.

        Runs the exact :func:`simplex_solve` pipeline (same
        :func:`_compile_standard_form`, same :func:`_two_phase_tableau`
        pivots), so the returned result is bit-for-bit what the cold
        reference produces.
        """
        A, b = self._problem().matrices()
        c = self.c.copy()
        A, b, shift, m = _compile_standard_form(A, b, c, self.lower, self.upper)
        self._compiled_rows = len(self._rows)
        if m == 0:
            if np.any(c < -_PIVOT_EPS):
                return LPResult(LPStatus.UNBOUNDED)
            return LPResult(
                LPStatus.OPTIMAL, x=shift.copy(), objective=float(self.c @ shift)
            )

        status, tableau = _two_phase_tableau(A, b, c, self.max_iter)
        if status is not LPStatus.OPTIMAL:
            return LPResult(status)
        T, rhs, basis, art_cols = tableau
        self._T, self._trhs, self._basis = T, rhs, basis
        self._frozen = art_cols
        return self._extract()

    def _warm_solve(self) -> Optional[LPResult]:
        """Price pending rows into the tableau and dual-resolve.

        Returns ``None`` when the dual pass ran out of pivots (caller
        rebuilds cold).
        """
        T, rhs, basis = self._T, self._trhs, self._basis
        assert T is not None and rhs is not None and basis is not None
        pending = range(self._compiled_rows, len(self._rows))
        if len(pending):
            m, total = T.shape
            k = len(pending)
            # k new rows, each with one fresh slack column appended.
            grown = np.zeros((m + k, total + k))
            grown[:m, :total] = T
            new_rhs = np.empty(m + k)
            new_rhs[:m] = rhs
            new_basis = np.empty(m + k, dtype=int)
            new_basis[:m] = basis
            for j, idx in enumerate(pending):
                row = np.zeros(total + k)
                row[: self.n_vars] = self._rows[idx]
                row[total + j] = 1.0
                r = self._rhs[idx] - float(self._rows[idx] @ self.lower)
                # Express the row in the current basis: subtract each basic
                # column's multiple (unit columns make this exact).
                coefs = row[new_basis[: m + j]]
                if np.any(coefs):
                    row[: total + k] -= coefs @ grown[: m + j]
                    r -= float(coefs @ new_rhs[: m + j])
                grown[m + j] = row
                new_rhs[m + j] = r
                new_basis[m + j] = total + j
            T, rhs, basis = grown, new_rhs, new_basis
            self._T, self._trhs, self._basis = T, rhs, basis
            self._compiled_rows = len(self._rows)

        obj = np.zeros(T.shape[1])
        obj[: self.n_vars] = self.c
        status = _dual_simplex(T, rhs, obj, basis, self.max_iter, frozen=self._frozen or None)
        if status is LPStatus.ITERATION_LIMIT:
            return None
        if status is not LPStatus.OPTIMAL:
            return LPResult(status)
        # Primal polish: usually returns immediately, but guards against
        # reduced-cost drift accumulated over many warm rounds.
        status, _ = _run_simplex(
            T, rhs, obj, basis, self.max_iter,
            frozen=set(self._frozen) if self._frozen else None,
        )
        if status is not LPStatus.OPTIMAL:
            return None if status is LPStatus.ITERATION_LIMIT else LPResult(status)
        return self._extract()

    def _extract(self) -> LPResult:
        T, rhs, basis = self._T, self._trhs, self._basis
        assert T is not None and rhs is not None and basis is not None
        x_full = np.zeros(T.shape[1])
        x_full[basis] = rhs
        x = x_full[: self.n_vars] + self.lower
        return LPResult(LPStatus.OPTIMAL, x=x, objective=float(self.c @ x))


def _two_phase_tableau(
    A: np.ndarray, b: np.ndarray, c: np.ndarray, max_iter: int
) -> Tuple[LPStatus, Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, List[int]]]]:
    """The :func:`_two_phase` pipeline, returning the live tableau.

    Identical pivot sequence to :func:`_two_phase`; used by
    :class:`WarmSimplex` so warm re-solves can resume from the final
    basis.  Returns ``(status, (T, rhs, basis, art_cols))`` with the
    tableau ``None`` on non-optimal outcomes.
    """
    m, n = A.shape

    A = A.copy()
    b = b.copy()
    neg = b < 0
    A[neg] *= -1.0
    b[neg] *= -1.0
    slack_sign = np.where(neg, -1.0, 1.0)

    n_art = int(neg.sum())
    total = n + m + n_art
    T = np.zeros((m, total))
    T[:, :n] = A
    T[np.arange(m), n + np.arange(m)] = slack_sign
    art_cols: List[int] = []
    k = 0
    basis = np.empty(m, dtype=int)
    for i in range(m):
        if neg[i]:
            col = n + m + k
            T[i, col] = 1.0
            art_cols.append(col)
            basis[i] = col
            k += 1
        else:
            basis[i] = n + i

    rhs = b.copy()

    if n_art:
        obj1 = np.zeros(total)
        obj1[art_cols] = 1.0
        status, val = _run_simplex(T, rhs, obj1, basis, max_iter)
        if status is not LPStatus.OPTIMAL:
            return (
                status if status is not LPStatus.UNBOUNDED else LPStatus.INFEASIBLE,
                None,
            )
        if val > 1e-7:
            return LPStatus.INFEASIBLE, None
        for i in range(m):
            if basis[i] in art_cols and rhs[i] <= 1e-9:
                pivot_col = next(
                    (j for j in range(n + m) if abs(T[i, j]) > _PIVOT_EPS), None
                )
                if pivot_col is not None:
                    _pivot(T, rhs, i, pivot_col, basis)
        art_set = set(art_cols)
        if any(bv in art_set for bv in basis):
            for i in range(m):
                if basis[i] in art_set:
                    T[i, :] = 0.0
                    T[i, basis[i]] = 1.0
                    rhs[i] = 0.0
        T[:, art_cols] = 0.0
        for i in range(m):
            if basis[i] in art_set:
                T[i, basis[i]] = 1.0

    obj2 = np.zeros(total)
    obj2[:n] = c
    status, _ = _run_simplex(
        T, rhs, obj2, basis, max_iter, frozen=set(art_cols) if n_art else None
    )
    if status is not LPStatus.OPTIMAL:
        return status, None
    return LPStatus.OPTIMAL, (T, rhs, basis, art_cols)
