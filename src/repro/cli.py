"""Command-line entry point: ``repro-experiments``.

Usage::

    repro-experiments list
    repro-experiments run E3 [--seed 7]
    repro-experiments run all [--seed 7]           # tolerant sweep + timings
    repro-experiments solvers                      # the repro.api registry
    repro-experiments gen --n 10 --count 3 --out instances.json
    repro-experiments solve instances.json --solver sne-lp3 --json
    repro-experiments solve-batch instances.json --solver sne-lp3 \
        --solver theorem6 --workers 4 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro import api
from repro.experiments import EXPERIMENTS, run_all_tolerant, run_experiment, sweep_summary

_DESCRIPTIONS = {
    "E1": "Theorem 1: LP formulations (1)/(2)/(3) agree",
    "E2": "Theorem 6: constructive wgt(T)/e subsidies",
    "E3": "Theorem 11: cycle lower bound -> 1/e",
    "E4": "Theorem 21: all-or-nothing lower bound -> e/(2e-1)",
    "E5": "Lemma 4: Bypass gadget threshold",
    "E6": "Theorem 3: BIN PACKING reduction",
    "E7": "Theorem 5: INDEPENDENT SET reduction & PoS gap",
    "E8": "Theorem 12: 3SAT reduction (Corollary 20)",
    "E9": "PoS <= H_n potential descent",
    "E10": "Figure 4: virtual cost visualization data",
    "E11": "SND budget sweep (exact vs heuristic)",
    "A1": "Ablations: packing rule & decomposition",
    "A2": "Section 6 extensions: multicast/weighted/coalitions/combinatorial",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation artefacts of 'Enforcing efficient "
            "equilibria in network design games via subsidies' (SPAA 2012)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("solvers", help="list the repro.api solver registry")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id (E1..E11, A1, A2) or 'all'")
    run_p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    run_p.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    run_p.add_argument(
        "--json-out",
        default=None,
        help=(
            "('run all' only) write a machine-readable sweep summary "
            "(per-experiment status + wall time) to this JSON file; "
            "defaults to <out>.json when --out is given"
        ),
    )

    gen_p = sub.add_parser(
        "gen", help="generate random broadcast instances as a JSON file"
    )
    gen_p.add_argument("--n", type=int, default=10, help="nodes per instance")
    gen_p.add_argument(
        "--model",
        choices=("tree-chords", "gnp", "geometric"),
        default="tree-chords",
        help="generator family (default: random tree plus chords)",
    )
    gen_p.add_argument(
        "--chords", type=int, default=None, help="tree-chords: extra chords (default n // 2)"
    )
    gen_p.add_argument(
        "--chord-factor",
        type=float,
        default=1.1,
        help="tree-chords: chord weight multiplier (default 1.1)",
    )
    gen_p.add_argument(
        "--density",
        "--p",
        dest="density",
        type=float,
        default=0.3,
        help="gnp: edge probability p (default 0.3)",
    )
    gen_p.add_argument(
        "--radius",
        type=float,
        default=0.5,
        help="geometric: connection radius in the unit square (default 0.5)",
    )
    gen_p.add_argument(
        "--weight-low",
        type=float,
        default=0.5,
        help="tree-chords/gnp: uniform weight lower bound "
        "(geometric weights are Euclidean distances)",
    )
    gen_p.add_argument(
        "--weight-high",
        type=float,
        default=2.0,
        help="tree-chords/gnp: uniform weight upper bound",
    )
    gen_p.add_argument("--count", type=int, default=1, help="number of instances")
    gen_p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    gen_p.add_argument("--out", default=None, help="output file (default stdout)")

    solve_p = sub.add_parser("solve", help="solve one instance via the registry")
    solve_p.add_argument("instance", help="instance JSON file ('-' for stdin)")
    solve_p.add_argument(
        "--solver", required=True, help="registry solver name (see 'solvers')"
    )
    solve_p.add_argument("--budget", type=float, default=None, help="SND budget")
    solve_p.add_argument("--method", default=None, help="LP backend (highs/simplex)")
    solve_p.add_argument("--json", action="store_true", help="emit the report as JSON")
    solve_p.add_argument("--out", default=None, help="also write output to this file")

    batch_p = sub.add_parser(
        "solve-batch", help="solve an instance sweep via solve_many"
    )
    batch_p.add_argument("instances", help="instances JSON file ('-' for stdin)")
    batch_p.add_argument(
        "--solver",
        action="append",
        required=True,
        help="registry solver name (repeatable)",
    )
    batch_p.add_argument(
        "--workers", type=int, default=1, help="thread-pool size (1 = serial)"
    )
    batch_p.add_argument("--budget", type=float, default=None, help="SND budget")
    batch_p.add_argument("--method", default=None, help="LP backend (highs/simplex)")
    batch_p.add_argument("--json", action="store_true", help="emit reports as JSON")
    batch_p.add_argument("--out", default=None, help="also write output to this file")
    return parser


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")


def _read_payload(path: str) -> Any:
    if path == "-":
        return json.load(sys.stdin)
    with open(path) as fh:
        return json.load(fh)


def _load_instances(path: str) -> List[Any]:
    """Read one game or a whole instance set from a JSON file."""
    data = _read_payload(path)
    if isinstance(data, dict) and data.get("kind") == "instance-set":
        data = data["instances"]
    if isinstance(data, dict):
        data = [data]
    return [api.serialize.game_from_json(entry) for entry in data]


def _solver_opts(args: argparse.Namespace) -> dict:
    opts: dict = {}
    if args.budget is not None:
        opts["budget"] = args.budget
    if args.method is not None:
        opts["method"] = args.method
    return opts


def _cmd_solvers() -> int:
    for spec in api.list_solvers():
        flags = []
        flags.append("exact" if spec.exact else "heuristic")
        if spec.broadcast_only:
            flags.append("broadcast-only")
        if spec.requires_tree_state:
            flags.append("tree-state")
        alias = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(
            f"{spec.name:18s} {spec.problem:8s} [{', '.join(flags)}] "
            f"{spec.description}{alias}"
        )
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.games.broadcast import BroadcastGame
    from repro.graphs.generators import (
        random_connected_gnp,
        random_geometric_graph,
        random_tree_plus_chords,
    )
    from repro.utils.rng import child_seeds

    chords = args.chords if args.chords is not None else args.n // 2
    instances = []
    # One independent child stream per instance (SeedSequence spawning), so
    # sweeps with neighbouring base seeds never share instances.
    for seed in child_seeds(args.seed, args.count):
        if args.model == "gnp":
            g = random_connected_gnp(
                args.n,
                args.density,
                seed=seed,
                weight_low=args.weight_low,
                weight_high=args.weight_high,
            )
        elif args.model == "geometric":
            g = random_geometric_graph(args.n, args.radius, seed=seed)
        else:
            g = random_tree_plus_chords(
                args.n,
                chords,
                seed=seed,
                weight_low=args.weight_low,
                weight_high=args.weight_high,
                chord_factor=args.chord_factor,
            )
        instances.append(api.serialize.game_to_json(BroadcastGame(g, root=0)))
    payload = {"kind": "instance-set", "instances": instances}
    _emit(json.dumps(payload, indent=2), args.out)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instances = _load_instances(args.instance)
    if len(instances) != 1:
        print(
            f"'solve' expects exactly one instance, got {len(instances)} "
            "(use solve-batch for sweeps)",
            file=sys.stderr,
        )
        return 2
    report = api.solve(instances[0], solver=args.solver, **_solver_opts(args))
    if args.json:
        _emit(json.dumps(api.serialize.report_to_json(report), indent=2), args.out)
    else:
        _emit(report.summary(), args.out)
    return 0 if report.feasible else 1


def _cmd_solve_batch(args: argparse.Namespace) -> int:
    instances = _load_instances(args.instances)
    grid = api.solve_many(
        instances, args.solver, workers=args.workers, opts=_solver_opts(args)
    )
    if args.json:
        payload = [
            [api.serialize.report_to_json(report) for report in row] for row in grid
        ]
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        lines = []
        for i, row in enumerate(grid):
            for report in row:
                lines.append(f"instance {i}: {report.summary()}")
        _emit("\n".join(lines), args.out)
    return 0 if all(r.feasible for row in grid for r in row) else 1


def _cmd_run_all(args: argparse.Namespace) -> int:
    """Tolerant sweep: report per-experiment timing, survive failures."""
    items = run_all_tolerant(seed=args.seed)
    chunks = []
    for item in items:
        if item.ok:
            assert item.result is not None
            chunks.append(item.result.to_text())
        else:
            chunks.append(
                f"[{item.experiment_id}] FAILED after {item.elapsed_seconds:.2f}s: "
                f"{type(item.error).__name__}: {item.error}"
            )
    summary = ["", "== sweep summary =="]
    for item in items:
        status = "ok" if item.ok else "FAILED"
        summary.append(f"{item.experiment_id:4s} {status:6s} {item.elapsed_seconds:8.2f}s")
    failures = [i for i in items if not i.ok]
    summary.append(
        f"{len(items) - len(failures)}/{len(items)} experiments passed, "
        f"total {sum(i.elapsed_seconds for i in items):.2f}s"
    )
    _emit("\n\n".join(chunks) + "\n" + "\n".join(summary), args.out)
    json_out = args.json_out
    if json_out is None and args.out:
        json_out = args.out + ".json"
    if json_out:
        with open(json_out, "w") as fh:
            json.dump(sweep_summary(items, seed=args.seed), fh, indent=2)
            fh.write("\n")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for key in EXPERIMENTS:
            print(f"{key:4s} {_DESCRIPTIONS.get(key, '')}")
        return 0
    if args.command == "solvers":
        return _cmd_solvers()
    if args.command in ("gen", "solve", "solve-batch"):
        handler = {
            "gen": _cmd_gen,
            "solve": _cmd_solve,
            "solve-batch": _cmd_solve_batch,
        }[args.command]
        try:
            return handler(args)
        except BrokenPipeError:
            # Downstream consumer (e.g. `| head`) closed stdout: not a user
            # error.  Conventional SIGPIPE exit, no message.
            return 141
        except json.JSONDecodeError as exc:
            print(f"error: invalid JSON in instance file: {exc}", file=sys.stderr)
            return 2
        except (api.UnknownSolverError, ValueError, TypeError, OSError) as exc:
            # User errors (bad name, bad file, bad option combination) get a
            # clean message instead of a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyError as exc:
            # Plain KeyError (UnknownSolverError is handled above): a payload
            # with the right kind but missing fields.
            print(
                f"error: malformed instance payload: missing field {exc.args[0]!r}",
                file=sys.stderr,
            )
            return 2

    # command == "run"
    if args.experiment.lower() == "all":
        return _cmd_run_all(args)
    try:
        result = run_experiment(args.experiment, seed=args.seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    _emit(result.to_text(), args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
