"""Tests for all-or-nothing SNE (exact B&B and greedy)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds.instances import theorem21_analysis, theorem21_path_instance
from repro.games import BroadcastGame, check_equilibrium
from repro.graphs import Graph
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies import (
    greedy_aon_sne,
    solve_aon_sne_exact,
    solve_sne_broadcast_lp3,
)


@pytest.fixture
def shortcut_triangle():
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
    game = BroadcastGame(g, root=0)
    return game.tree_state([(0, 1), (1, 2)])


class TestExactBranchAndBound:
    def test_triangle_needs_one_full_edge(self, shortcut_triangle):
        res = solve_aon_sne_exact(shortcut_triangle)
        assert res.optimal and res.verified
        # Fractional optimum is 0.3 but AoN must fully subsidize one edge.
        assert res.cost == pytest.approx(1.0, abs=1e-6)
        assert res.subsidies.is_all_or_nothing()

    def test_zero_cost_when_already_equilibrium(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        game = BroadcastGame(g, root=0)
        res = solve_aon_sne_exact(game.tree_state([(0, 1), (1, 2)]))
        assert res.cost == 0.0
        assert res.optimal

    def test_exact_at_least_fractional(self, shortcut_triangle):
        frac = solve_sne_broadcast_lp3(shortcut_triangle)
        aon = solve_aon_sne_exact(shortcut_triangle)
        assert aon.cost >= frac.cost - 1e-9

    def test_enforces_equilibrium(self, shortcut_triangle):
        res = solve_aon_sne_exact(shortcut_triangle)
        assert check_equilibrium(
            shortcut_triangle, res.subsidies, tol=1e-6
        ).is_equilibrium

    def test_node_budget_degrades_gracefully(self, shortcut_triangle):
        res = solve_aon_sne_exact(shortcut_triangle, max_nodes=1)
        assert res.verified  # full-baseline incumbent is always valid
        assert not res.optimal or res.cost <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 8), st.integers(0, 10_000))
    def test_random_instances_verified_and_bounded(self, n, seed):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        frac = solve_sne_broadcast_lp3(state)
        aon = solve_aon_sne_exact(state)
        assert aon.optimal
        assert aon.verified
        assert aon.subsidies.is_all_or_nothing()
        assert frac.cost - 1e-6 <= aon.cost <= state.social_cost() + 1e-9

    def test_theorem21_small_instance_matches_closed_form(self):
        for n in (6, 9, 12):
            game, state = theorem21_path_instance(n)
            analysis = theorem21_analysis(n)
            res = solve_aon_sne_exact(state)
            assert res.optimal and res.verified
            assert res.cost == pytest.approx(analysis.optimal_cost, abs=1e-6)


class TestGreedy:
    def test_triangle(self, shortcut_triangle):
        res = greedy_aon_sne(shortcut_triangle)
        assert res.verified
        assert res.subsidies.is_all_or_nothing()
        assert res.cost == pytest.approx(1.0, abs=1e-9)

    def test_zero_when_equilibrium(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        game = BroadcastGame(g, root=0)
        res = greedy_aon_sne(game.tree_state([(0, 1), (1, 2)]))
        assert res.cost == 0.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 9), st.integers(0, 10_000))
    def test_greedy_upper_bounds_exact(self, n, seed):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        greedy = greedy_aon_sne(state)
        exact = solve_aon_sne_exact(state)
        assert greedy.verified
        assert greedy.cost >= exact.cost - 1e-9
        assert greedy.cost <= state.social_cost() + 1e-9
