"""Undirected weighted simple graph.

Nodes are arbitrary hashables (the hardness gadgets use tuples and strings);
edges are stored once under a canonical orientation so ``(u, v)`` and
``(v, u)`` always refer to the same edge.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.utils.validation import check_edge_weight

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.core import IndexedGraph

Node = Hashable
Edge = Tuple[Node, Node]

#: Memoized ``_sort_key`` results.  Keyed by ``(type, node)`` rather than the
#: node alone so equal-but-differently-typed values (``1`` vs ``1.0``) keep
#: distinct keys.  ``repr`` on gadget labels (nested tuples, long strings) is
#: the single hottest call in edge canonicalization without this cache.
_SORT_KEY_CACHE: Dict[Tuple[type, Node], Tuple[str, str]] = {}
_SORT_KEY_CACHE_LIMIT = 1 << 17


def _sort_key(node: Node) -> Tuple[str, str]:
    """Total order over heterogeneous hashables (type name, then repr)."""
    cache_key = (node.__class__, node)
    key = _SORT_KEY_CACHE.get(cache_key)
    if key is None:
        key = (type(node).__name__, repr(node))
        if len(_SORT_KEY_CACHE) >= _SORT_KEY_CACHE_LIMIT:
            _SORT_KEY_CACHE.clear()
        _SORT_KEY_CACHE[cache_key] = key
    return key


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical orientation of the undirected edge {u, v}.

    Homogeneous comparable nodes use their natural order; mixed node types
    fall back to a deterministic (type-name, repr) order.
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed: {u!r}")
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if _sort_key(u) <= _sort_key(v) else (v, u)


class Graph:
    """Undirected simple graph with nonnegative float edge weights.

    The adjacency structure is a dict-of-dicts (``adj[u][v] -> weight``) so
    neighbor iteration, used heavily by Dijkstra-based best-response oracles,
    is a plain dict walk.
    """

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        #: mutation counter; keys the cached IndexedGraph snapshot
        self._version: int = 0
        self._indexed_cache: "Optional[Tuple[int, IndexedGraph]]" = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Node, Node, float]]) -> "Graph":
        """Build a graph from an iterable of ``(u, v, weight)`` triples."""
        g = cls()
        for u, v, w in edges:
            g.add_edge(u, v, w)
        return g

    def add_node(self, u: Node) -> None:
        """Add an isolated node (no-op when already present)."""
        if u not in self._adj:
            self._adj[u] = {}
            self._version += 1

    def add_edge(self, u: Node, v: Node, weight: float) -> None:
        """Add (or overwrite) the edge {u, v} with the given weight."""
        w = check_edge_weight(weight)
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        self._adj.setdefault(u, {})[v] = w
        self._adj.setdefault(v, {})[u] = w
        self._version += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge {u, v}; raises KeyError when absent."""
        del self._adj[u][v]
        del self._adj[v][u]
        self._version += 1

    # -- queries ----------------------------------------------------------

    def __contains__(self, u: Node) -> bool:
        return u in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge {u, v}; raises KeyError when absent."""
        return self._adj[u][v]

    def neighbors(self, u: Node) -> Iterator[Node]:
        return iter(self._adj[u])

    def adjacency(self, u: Node) -> Dict[Node, float]:
        """Read-only view (by convention) of ``{neighbor: weight}`` for u."""
        return self._adj[u]

    def degree(self, u: Node) -> int:
        return len(self._adj[u])

    @property
    def nodes(self) -> List[Node]:
        return list(self._adj)

    def node_set(self) -> Set[Node]:
        return set(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each edge exactly once as ``(u, v, weight)`` canonically."""
        seen: Set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                e = canonical_edge(u, v)
                if e not in seen:
                    seen.add(e)
                    yield e[0], e[1], w

    def edge_set(self) -> Set[Edge]:
        return {canonical_edge(u, v) for u, v, _ in self.edges()}

    def total_weight(self) -> float:
        """Sum of all edge weights (``wgt(E)`` in the paper's notation)."""
        return sum(w for _, _, w in self.edges())

    def subset_weight(self, edges: Iterable[Edge]) -> float:
        """``wgt(A)`` for an edge subset A of this graph."""
        return sum(self.weight(u, v) for u, v in edges)

    # -- connectivity -----------------------------------------------------

    def connected_components(self) -> List[Set[Node]]:
        """All connected components as node sets (BFS)."""
        seen: Set[Node] = set()
        comps: List[Set[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = {start}
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adj[u]:
                    if v not in comp:
                        comp.add(v)
                        queue.append(v)
            seen |= comp
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    # -- indexed snapshot --------------------------------------------------

    def to_indexed(self) -> "IndexedGraph":
        """CSR snapshot with interned int node/edge ids (cached).

        The snapshot is immutable; it is rebuilt lazily after any mutation
        (keyed by an internal version counter), so hot paths that intern the
        same graph repeatedly pay for construction once.
        """
        from repro.graphs.core import IndexedGraph

        cached = self._indexed_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        ig = IndexedGraph(self.nodes, self.edges())
        self._indexed_cache = (self._version, ig)
        return ig

    # -- derived graphs ---------------------------------------------------

    def copy(self) -> "Graph":
        g = Graph()
        for u in self._adj:
            g.add_node(u)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Subgraph spanned by the given edges (keeps all nodes of self)."""
        g = Graph()
        for u in self._adj:
            g.add_node(u)
        for u, v in edges:
            g.add_edge(u, v, self.weight(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges}, wgt={self.total_weight():g})"
