"""Content-addressed cache: keys, storage, and invalidation semantics."""

import dataclasses
import json

import pytest

from repro.api.registry import _REGISTRY, get_solver
from repro.api.serialize import game_to_json
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.runtime import (
    NullCache,
    ResultCache,
    SweepRunner,
    SweepSpec,
    coerce_cache,
    default_cache_dir,
    experiment_job_key,
    solve_job_key,
)
from repro.utils.hashing import (
    UnhashablePayloadError,
    canonical_json,
    source_digest,
    stable_hash,
)


@pytest.fixture()
def instance_json():
    g = random_tree_plus_chords(8, 4, seed=3)
    return game_to_json(BroadcastGame(g, root=0))


class TestHashing:
    def test_key_order_invariant(self):
        assert stable_hash({"a": 1, "b": [2, 3]}) == stable_hash({"b": [2, 3], "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_canonical_json_is_minimal_and_sorted(self):
        assert canonical_json({"b": 1, "a": True}) == '{"a":true,"b":1}'

    def test_nan_rejected(self):
        with pytest.raises(UnhashablePayloadError):
            stable_hash({"x": float("nan")})

    def test_non_json_rejected(self):
        with pytest.raises(UnhashablePayloadError):
            stable_hash({"x": object()})

    def test_source_digest_boundary(self):
        # concatenation must be unambiguous: ("ab","c") != ("a","bc")
        assert source_digest("ab", "c") != source_digest("a", "bc")


class TestKeys:
    def test_same_content_same_key(self, instance_json):
        k1 = solve_job_key(instance_json, "sne-lp3", "1", {"verify": True})
        k2 = solve_job_key(
            json.loads(json.dumps(instance_json)), "sne-lp3", "1", {"verify": True}
        )
        assert k1 == k2

    def test_key_varies_with_each_ingredient(self, instance_json):
        base = solve_job_key(instance_json, "sne-lp3", "1", {})
        other = game_to_json(
            BroadcastGame(random_tree_plus_chords(8, 4, seed=4), root=0)
        )
        assert solve_job_key(other, "sne-lp3", "1", {}) != base
        assert solve_job_key(instance_json, "theorem6", "1", {}) != base
        assert solve_job_key(instance_json, "sne-lp3", "2", {}) != base
        assert solve_job_key(instance_json, "sne-lp3", "1", {"verify": False}) != base

    def test_experiment_key_tracks_source(self):
        a = experiment_job_key("E3", 0, "digest-a")
        assert experiment_job_key("E3", 0, "digest-b") != a
        assert experiment_job_key("E3", 1, "digest-a") != a
        assert experiment_job_key("E4", 0, "digest-a") != a


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"status": "ok", "x": 1})
        assert cache.get("ab" * 32) == {"status": "ok", "x": 1}
        assert ("ab" * 32) in cache
        assert len(cache) == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"v": 1})
        assert cache.path_for(key).parent.name == "cd"
        assert cache.path_for(key).is_file()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"v": 1})
        cache.path_for(key).write_text("{truncated")
        assert cache.get(key) is None
        assert key not in cache

    def test_unreadable_entry_is_a_miss_but_survives(self, tmp_path):
        import os

        if os.geteuid() == 0:
            pytest.skip("root ignores file permissions")
        cache = ResultCache(tmp_path)
        key = "0a" * 32
        cache.put(key, {"v": 1})
        cache.path_for(key).chmod(0o000)
        try:
            assert cache.get(key) is None
            assert cache.path_for(key).exists()  # not deleted
        finally:
            cache.path_for(key).chmod(0o644)

    def test_coerce_cache_convention(self, tmp_path):
        from repro.runtime import coerce_cache

        assert isinstance(coerce_cache(False), NullCache)
        assert isinstance(coerce_cache(None), ResultCache)
        assert coerce_cache(tmp_path).root == tmp_path
        cache = ResultCache(tmp_path)
        assert coerce_cache(cache) is cache

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(stable_hash(i), {"i": i})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_tmp_leftovers_are_not_entries(self, tmp_path):
        # a worker killed between mkstemp and os.replace leaves .tmp-* files
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"v": 1})
        (cache.path_for(key).parent / ".tmp-dead.json").write_text("{")
        assert list(cache.keys()) == [key]
        assert len(cache) == 1
        assert cache.clear() == 1

    def test_null_cache_never_stores(self):
        cache = NullCache()
        cache.put("k", {"v": 1})
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_env_var_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert ResultCache().root == tmp_path / "custom"


class TestCacheDirPrecedence:
    """Documented order: explicit path > $REPRO_CACHE_DIR > $XDG_CACHE_HOME
    > ~/.cache — each layer must beat everything below it."""

    def test_explicit_path_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert ResultCache(tmp_path / "flag").root == tmp_path / "flag"
        assert coerce_cache(tmp_path / "flag").root == tmp_path / "flag"

    def test_env_var_beats_xdg(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "env"

    def test_xdg_beats_home(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"

    def test_home_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / ".cache" / "repro"

    def test_empty_env_var_is_unset(self, tmp_path, monkeypatch):
        # An empty REPRO_CACHE_DIR (e.g. `REPRO_CACHE_DIR= cmd`) must not
        # select the current directory; it falls through to XDG/home.
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"


class TestInvalidation:
    """Bumping a solver's version orphans its cached cells."""

    def test_version_bump_forces_recompute(self, tmp_path, monkeypatch):
        spec = SweepSpec(solvers=["theorem6"], sizes=[8], count=2, seed=1)
        jobs = spec.expand()
        cache = ResultCache(tmp_path)
        cold = SweepRunner(cache=cache).run(jobs)
        assert cold.cache_hits == 0 and cold.ok

        warm = SweepRunner(cache=cache).run(jobs)
        assert warm.cache_hits == len(jobs)

        bumped = dataclasses.replace(get_solver("theorem6"), version="2-test")
        monkeypatch.setitem(_REGISTRY, "theorem6", bumped)
        after_bump = SweepRunner(cache=cache).run(jobs)
        assert after_bump.cache_hits == 0 and after_bump.ok
        # both generations coexist on disk (content-addressed, no overwrite)
        assert len(cache) == 2 * len(jobs)

    def test_opts_change_forces_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = SweepSpec(solvers=["sne-lp3"], sizes=[8], seed=1).expand()
        assert SweepRunner(cache=cache).run(jobs).cache_hits == 0
        jobs2 = SweepSpec(
            solvers=["sne-lp3"], sizes=[8], seed=1, opts={"verify": False}
        ).expand()
        assert SweepRunner(cache=cache).run(jobs2).cache_hits == 0
        # and each repeats as a hit against its own cell
        assert SweepRunner(cache=cache).run(jobs).cache_hits == 1
        assert SweepRunner(cache=cache).run(jobs2).cache_hits == 1
