"""The unified entry point: ``solve`` one instance, ``solve_many`` a sweep.

>>> from repro.api import solve
>>> report = solve(game, solver="sne-lp3")        # doctest: +SKIP
>>> report.budget_used, report.verified           # doctest: +SKIP

``solve`` accepts a target state (``TreeState`` / ``State``) or a whole game
(``BroadcastGame`` / ``NetworkDesignGame``); games default to their natural
socially-optimal target (the MST for broadcast, all-shortest-paths
otherwise).  Keyword options are forwarded to the solver adapter — e.g.
``method="simplex"`` for the LP solvers or ``budget=...`` for SND.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api import adapters  # noqa: F401  (import populates the registry)
from repro.api.adapters import AnyInstance
from repro.api.registry import get_solver
from repro.api.report import SolveReport


def solve(instance: AnyInstance, solver: str, **opts: Any) -> SolveReport:
    """Run one registered solver on one instance.

    Parameters
    ----------
    instance:
        A target state or a game (coerced per the solver's capabilities).
    solver:
        A registry name or alias — see :func:`repro.api.list_solvers`.
    opts:
        Solver-specific keyword options, forwarded verbatim.
    """
    spec = get_solver(solver)
    return spec.fn(instance, **opts)  # type: ignore[return-value]


def solve_many(
    instances: Sequence[AnyInstance],
    solvers: Union[str, Sequence[str]],
    workers: Optional[int] = None,
    opts: Optional[Dict[str, Any]] = None,
    executor: str = "thread",
    cache: Any = False,
    timeout: Optional[float] = None,
) -> Union[List[SolveReport], List[List[SolveReport]]]:
    """Batch execution over an instance sweep (a thin front for
    :func:`repro.runtime.run_solve_batch`).

    Parameters
    ----------
    instances:
        The instances to solve (states and/or games; ``executor="process"``
        needs serializable games).
    solvers:
        One solver name — returns a flat ``List[SolveReport]`` aligned with
        ``instances`` — or a sequence of names, returning one inner list per
        instance (``result[i][j]`` is solver ``j`` on instance ``i``).
    workers:
        ``None``/``0``/``1`` runs serially; ``N > 1`` fans out to a pool.
        Output order (and content, for the deterministic built-in solvers)
        is identical either way.
    opts:
        Options applied to every solve.
    executor:
        ``"thread"`` (default) shares live objects across a thread pool;
        ``"process"`` routes through the :mod:`repro.runtime` sweep runner —
        true multi-core execution plus the content-addressed result cache.
    cache:
        (process executor only) ``False`` disables caching (default),
        ``None`` uses the default cache directory, or pass a
        :class:`repro.runtime.ResultCache`.
    timeout:
        (process executor only) per-job wall-clock budget in seconds.
    """
    from repro.runtime.runner import run_solve_batch

    single = isinstance(solvers, str)
    names: List[str] = [solvers] if single else list(solvers)
    grid = run_solve_batch(
        instances,
        names,
        opts=opts,
        workers=workers,
        executor=executor,
        cache=cache,
        timeout=timeout,
    )
    if single:
        return [row[0] for row in grid]
    return grid
