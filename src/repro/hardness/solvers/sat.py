"""CNF formulas and a DPLL SAT solver.

The Theorem 12 reduction consumes 3SAT formulas in which every clause has
exactly three literals over distinct variables (the paper additionally
bounds occurrences by four — 3SAT-4 — to get a 9-label variable coloring;
our reduction accepts any occurrence count and simply uses more labels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import ensure_rng

#: A literal is a nonzero int: +v means variable v, -v its negation.
Literal = int
Clause = Tuple[Literal, ...]


@dataclass(frozen=True)
class CNFFormula:
    """A CNF formula over variables ``1..n_vars``."""

    clauses: Tuple[Clause, ...]
    n_vars: int

    @classmethod
    def from_lists(cls, clauses: Sequence[Sequence[int]]) -> "CNFFormula":
        cleaned: List[Clause] = []
        n_vars = 0
        for cl in clauses:
            if not cl:
                raise ValueError("empty clause")
            lits = tuple(int(x) for x in cl)
            if any(x == 0 for x in lits):
                raise ValueError("literal 0 is invalid")
            cleaned.append(lits)
            n_vars = max(n_vars, max(abs(x) for x in lits))
        return cls(tuple(cleaned), n_vars)

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def variables_of(self, clause: Clause) -> FrozenSet[int]:
        return frozenset(abs(x) for x in clause)

    def occurrences(self, var: int) -> List[Tuple[int, Literal]]:
        """All ``(clause_index, literal)`` appearances of a variable."""
        out = []
        for ci, cl in enumerate(self.clauses):
            for lit in cl:
                if abs(lit) == var:
                    out.append((ci, lit))
        return out

    def is_satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a (total, for the used variables) assignment."""
        for cl in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in cl
            ):
                return False
        return True


def is_3sat(formula: CNFFormula) -> bool:
    """Exactly three literals per clause over three distinct variables."""
    return all(
        len(cl) == 3 and len({abs(x) for x in cl}) == 3 for cl in formula.clauses
    )


def is_3sat4(formula: CNFFormula) -> bool:
    """3SAT with every variable appearing in at most four clauses."""
    if not is_3sat(formula):
        return False
    counts: Dict[int, int] = {}
    for cl in formula.clauses:
        for lit in cl:
            counts[abs(lit)] = counts.get(abs(lit), 0) + 1
    return all(c <= 4 for c in counts.values())


def dpll_solve(formula: CNFFormula) -> Optional[Dict[int, bool]]:
    """DPLL with unit propagation and pure-literal elimination.

    Returns a satisfying assignment (total over all variables) or ``None``.
    """

    def propagate(clauses: List[List[int]], assignment: Dict[int, bool]):
        changed = True
        while changed:
            changed = False
            new_clauses: List[List[int]] = []
            for cl in clauses:
                vals = []
                satisfied = False
                for lit in cl:
                    var = abs(lit)
                    if var in assignment:
                        if assignment[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        vals.append(lit)
                if satisfied:
                    continue
                if not vals:
                    return None  # conflict
                if len(vals) == 1:
                    lit = vals[0]
                    assignment[abs(lit)] = lit > 0
                    changed = True
                else:
                    new_clauses.append(vals)
            clauses = new_clauses
        return clauses

    def pure_literals(clauses: List[List[int]], assignment: Dict[int, bool]) -> bool:
        polarity: Dict[int, int] = {}
        for cl in clauses:
            for lit in cl:
                var = abs(lit)
                sign = 1 if lit > 0 else -1
                if var not in polarity:
                    polarity[var] = sign
                elif polarity[var] != sign:
                    polarity[var] = 0  # appears with both signs: not pure
        assigned_any = False
        for var, pol in polarity.items():
            if pol != 0 and var not in assignment:
                assignment[var] = pol > 0
                assigned_any = True
        return assigned_any

    def search(clauses: List[List[int]], assignment: Dict[int, bool]):
        clauses = propagate(clauses, assignment)
        if clauses is None:
            return None
        if not clauses:
            return assignment
        if pure_literals(clauses, assignment):
            return search(clauses, assignment)
        # Branch on the first unassigned variable of the shortest clause.
        shortest = min(clauses, key=len)
        var = abs(shortest[0])
        for value in (True, False):
            trial = dict(assignment)
            trial[var] = value
            result = search([list(cl) for cl in clauses], trial)
            if result is not None:
                return result
        return None

    result = search([list(cl) for cl in formula.clauses], {})
    if result is None:
        return None
    for v in range(1, formula.n_vars + 1):
        result.setdefault(v, False)
    assert formula.is_satisfied_by(result)
    return result


def random_3sat(
    n_vars: int,
    n_clauses: int,
    seed: "int | np.random.Generator | None" = None,
) -> CNFFormula:
    """Random 3SAT with three distinct variables per clause."""
    if n_vars < 3:
        raise ValueError("need at least 3 variables")
    rng = ensure_rng(seed)
    clauses = []
    for _ in range(n_clauses):
        vars_ = rng.choice(np.arange(1, n_vars + 1), size=3, replace=False)
        signs = rng.integers(0, 2, size=3) * 2 - 1
        clauses.append([int(v * s) for v, s in zip(vars_, signs)])
    return CNFFormula.from_lists(clauses)
