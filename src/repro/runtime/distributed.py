"""Distributed sweep runtime: coordinator/worker sharding with work-stealing.

The single-host :class:`~repro.runtime.runner.SweepRunner` caps sweep
throughput at one machine's cores and holds every report in memory.  This
module generalizes the executor to a **coordinator/worker** protocol:

* the **coordinator** (:class:`SweepCoordinator`) expands a sweep into a
  job queue, serves it to workers — over a pure-stdlib HTTP/JSON protocol
  (the :mod:`repro.serve` server idioms) or a shared **spool directory**
  for filesystem clusters — and folds every arriving outcome *streamingly*
  into per-grid-cell Welford statistics, the content-addressed
  :class:`~repro.runtime.cache.ResultCache`, and an incremental
  ``--json-out`` writer (records spill to a sorted spool; the canonical
  document is emitted at close), so coordinator memory stays O(cells),
  never O(reports);
* **workers** (:func:`run_worker`, CLI ``sweep-worker``) pull jobs in
  *leases*, execute them through the same
  :func:`~repro.runtime.workers.run_solve_job` payload path as every other
  execution mode, write successes into their local shard of the result
  cache, and report outcomes back.

**Work-stealing** falls out of lease expiry: a worker that dies (SIGKILL,
OOM) or stalls past its lease stops heartbeating, the lease lapses, and
the job is reassigned to the next worker that asks — the same containment
philosophy as the fork pool's respawn logic, minus any need to observe the
death directly.  A job whose lease keeps expiring (it kills every worker
that touches it) is failed after :data:`DEFAULT_MAX_STEALS` steals instead
of bouncing forever.  Completions are idempotent: two workers finishing
the same stolen job is safe by construction, because results are
content-addressed and the first accepted record wins (both are identical
bytes for a deterministic solver).

Determinism: expansion happens once in the coordinator, workers run the
same ``run_solve_job`` code as ``--jobs N`` pools, and the final JSON is
written through the same :func:`~repro.runtime.runner.job_record` /
:func:`~repro.runtime.runner.write_sweep_json` path as the single-host
sweep — so ``cli sweep --json-out`` is byte-identical across one host,
one worker, N workers, warm caches, and runs where a worker was killed
mid-lease (see ``tests/test_distributed.py``).

HTTP protocol (all bodies ``application/json``)::

    POST /lease      {"worker": id}                  -> {"job": {...}|null,
                                                         "lease": id|null,
                                                         "done": bool, ...}
    POST /complete   {"worker", "lease", "index",
                      "outcome": {...}}              -> {"accepted", "duplicate"}
    POST /heartbeat  {"worker": id}                  -> {"ok": true, "done": bool}
    GET  /stats                                      -> coordinator counters
    GET  /healthz                                    -> liveness + role

Spool-directory protocol (shared filesystem, no sockets)::

    <spool>/coordinator.json      readiness + lease metadata
    <spool>/jobs/NNNNNNNN.json    queued job (index + run_solve_job payload)
    <spool>/claims/NNNNNNNN.json  leased job (atomic rename from jobs/);
                                  the worker re-touches it as its heartbeat
    <spool>/results/NNNNNNNN.json outcome (tmp write + atomic rename)
    <spool>/done                  coordinator's completion marker

Claiming is ``os.rename(jobs/X, claims/X)`` — atomic on POSIX, so exactly
one worker wins a job; a claim whose mtime goes stale past the lease
timeout is renamed back into ``jobs/`` (a steal).
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.runtime.cache import AnyCache, coerce_cache
from repro.runtime.runner import (
    JobOutcome,
    dump_job_record,
    job_record,
    store_solve_entry,
    sweep_job_key,
    write_sweep_json,
)
from repro.runtime.spec import SweepJob
from repro.runtime.workers import run_solve_job

JSONDict = Dict[str, Any]
ProgressFn = Callable[[JobOutcome, int, int], None]

#: default lease duration when neither ``lease_timeout`` nor a per-job
#: ``timeout`` suggests one
DEFAULT_LEASE_TIMEOUT = 30.0

#: lease expiries tolerated per job before it is failed outright — the
#: distributed analogue of the fork pool's ``_MAX_JOB_RETRIES``: one
#: worker-killing cell must not take every worker (and the sweep) with it
DEFAULT_MAX_STEALS = 3

#: suggested worker poll interval when the queue is momentarily empty
IDLE_POLL_SECONDS = 0.2

#: test/chaos hook: seconds a worker sleeps between leasing a job and
#: executing it, giving crash-containment tests a deterministic window to
#: SIGKILL the worker mid-lease (unset/0 in normal operation)
STALL_ENV = "REPRO_SWEEP_WORKER_STALL_S"


def default_lease_timeout(job_timeout: Optional[float]) -> float:
    """Lease duration derived from the per-job budget.

    Twice the job timeout plus grace — a healthy worker heartbeats well
    within that, so only death or a genuine stall loses the lease.
    """
    if job_timeout:
        return max(2.0 * float(job_timeout) + 5.0, DEFAULT_LEASE_TIMEOUT)
    return DEFAULT_LEASE_TIMEOUT


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


# ---------------------------------------------------------------------------
# streaming aggregation
# ---------------------------------------------------------------------------


class Welford:
    """Online mean/variance (Welford's algorithm) — O(1) memory per cell."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def update(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    def to_json(self) -> JSONDict:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.min,
            "max": self.max,
        }


def cell_of_label(label: str) -> str:
    """The grid cell a job belongs to: its label minus the replica index.

    ``"tree-chords-n12[3] x sne-lp3"`` → ``"tree-chords-n12 x sne-lp3"``,
    so the K replicas of one (model, size, solver) cell aggregate
    together.  Labels without a replica suffix (explicit instance lists)
    are their own cells.
    """
    stem, sep, solver = label.rpartition(" x ")
    if not sep:
        return label
    if stem.endswith("]"):
        cut = stem.rfind("[")
        if cut > 0 and stem[cut + 1 : -1].isdigit():
            stem = stem[:cut]
    return f"{stem} x {solver}"


class _CellStats:
    """Per-grid-cell streaming aggregates over arriving ok outcomes."""

    def __init__(self) -> None:
        self._cells: Dict[str, Dict[str, Welford]] = {}

    def fold(self, label: str, report: Optional[JSONDict], elapsed: float, cached: bool) -> None:
        if not isinstance(report, dict):
            return
        cell = self._cells.setdefault(
            cell_of_label(label), {"budget": Welford(), "elapsed": Welford()}
        )
        budget = report.get("budget_used")
        if isinstance(budget, (int, float)):
            cell["budget"].update(float(budget))
        if not cached:  # cache hits carry the *original* solve time
            cell["elapsed"].update(elapsed)

    def to_json(self) -> JSONDict:
        return {
            name: {metric: w.to_json() for metric, w in cell.items()}
            for name, cell in sorted(self._cells.items())
        }


# ---------------------------------------------------------------------------
# the lease board (HTTP transport state)
# ---------------------------------------------------------------------------


class LeaseBoard:
    """Thread-safe job queue with leases, expiry-based stealing, heartbeats.

    Pure bookkeeping — it never executes anything and never touches the
    outcome payloads.  All methods take the lock; ``reap()`` hands back
    jobs that exhausted their steal budget so the owner (the coordinator)
    can fold synthetic failures for them.
    """

    def __init__(
        self,
        total: int,
        queued: Sequence[int],
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_steals: int = DEFAULT_MAX_STEALS,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        self.total = total
        self.lease_timeout = float(lease_timeout)
        self.max_steals = max_steals
        self._lock = threading.Lock()
        self._queue: deque = deque(queued)
        #: lease id -> (job index, worker, absolute deadline)
        self._leases: Dict[str, Tuple[int, str, float]] = {}
        #: job index -> its *current* lease id
        self._lease_of: Dict[int, str] = {}
        self._done: set = set(range(total)) - set(queued)
        self._steals: Dict[int, int] = {}
        self._gave_up: List[Tuple[int, str]] = []
        self.stolen = 0
        self.duplicates = 0
        self.workers: Dict[str, Dict[str, Any]] = {}
        self.first_lease_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.all_done = threading.Event()
        if len(self._done) >= total:
            self.finished_at = time.monotonic()
            self.all_done.set()

    # -- internals (lock held) ----------------------------------------------

    def _worker(self, worker: str, now: float) -> Dict[str, Any]:
        record = self.workers.setdefault(
            worker,
            {"completed": 0, "failed_jobs": 0, "duplicates": 0, "stolen_from": 0},
        )
        record["last_seen"] = now
        return record

    def _reclaim(self, now: float) -> None:
        """Requeue (or give up on) every lease past its deadline."""
        for lease_id, (index, worker, deadline) in list(self._leases.items()):
            if now < deadline:
                continue
            del self._leases[lease_id]
            self._lease_of.pop(index, None)
            self.stolen += 1
            self._steals[index] = self._steals.get(index, 0) + 1
            if worker in self.workers:
                self.workers[worker]["stolen_from"] += 1
            if self._steals[index] >= self.max_steals:
                self._done.add(index)
                self._gave_up.append(
                    (
                        index,
                        f"lease expired {self._steals[index]} times "
                        f"(last worker {worker!r}); giving up on this job",
                    )
                )
            else:
                self._queue.append(index)
        self._check_done()

    def _check_done(self) -> None:
        if len(self._done) >= self.total and not self.all_done.is_set():
            if self.finished_at is None:
                self.finished_at = time.monotonic()
            self.all_done.set()

    # -- the protocol verbs -------------------------------------------------

    def lease(self, worker: str, now: Optional[float] = None) -> Optional[Tuple[int, str]]:
        """Assign the next queued job to ``worker``; ``None`` when starved."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._worker(worker, now)
            self._reclaim(now)
            if not self._queue:
                return None
            index = self._queue.popleft()
            lease_id = uuid.uuid4().hex
            self._leases[lease_id] = (index, worker, now + self.lease_timeout)
            self._lease_of[index] = lease_id
            if self.first_lease_at is None:
                self.first_lease_at = now
            return index, lease_id

    def complete(
        self, worker: str, lease_id: Optional[str], index: int, ok: bool,
        now: Optional[float] = None,
    ) -> bool:
        """Record a finished job; returns ``False`` for duplicates.

        Keyed on the job index, not the lease: a worker finishing a job
        whose lease was already stolen still did valid work (results are
        content-addressed), so its outcome is accepted *unless* another
        worker already completed the job — then it is a duplicate and the
        first accepted record stands.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            record = self._worker(worker, now)
            if lease_id is not None and lease_id in self._leases:
                held_index, _, _ = self._leases.pop(lease_id)
                self._lease_of.pop(held_index, None)
            if index in self._done:
                record["duplicates"] += 1
                self.duplicates += 1
                self._reclaim(now)
                return False
            # Late complete after a steal: the index may be back in the
            # queue or re-leased to someone else — claim it in either case.
            current = self._lease_of.pop(index, None)
            if current is not None:
                self._leases.pop(current, None)
            try:
                self._queue.remove(index)
            except ValueError:
                pass
            self._done.add(index)
            record["completed"] += 1
            if not ok:
                record["failed_jobs"] += 1
            self._reclaim(now)
            return True

    def heartbeat(self, worker: str, now: Optional[float] = None) -> None:
        """Mark ``worker`` alive and extend every lease it holds."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._worker(worker, now)
            for lease_id, (index, owner, _) in list(self._leases.items()):
                if owner == worker:
                    self._leases[lease_id] = (index, owner, now + self.lease_timeout)
            self._reclaim(now)

    def reap(self, now: Optional[float] = None) -> List[Tuple[int, str]]:
        """Jobs that exhausted their steal budget since the last call."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._reclaim(now)
            gave_up, self._gave_up = self._gave_up, []
            return gave_up

    # -- spool-transport bookkeeping ----------------------------------------
    # In spool mode the *filesystem* is the lease store (a claim file is a
    # lease; its mtime is the heartbeat), so the board only keeps counters
    # and terminal state consistent between the two transports.

    def spool_steal(self, index: int, worker: Optional[str]) -> Optional[int]:
        """Record an expired claim; returns the job's steal count so far.

        ``None`` means the job is already done (the claim is a leftover and
        should simply be deleted, not re-queued).
        """
        with self._lock:
            if index in self._done:
                return None
            self.stolen += 1
            self._steals[index] = self._steals.get(index, 0) + 1
            if worker and worker in self.workers:
                self.workers[worker]["stolen_from"] += 1
            return self._steals[index]

    def force_done(self, index: int, worker: Optional[str] = None, ok: bool = False,
                   now: Optional[float] = None) -> bool:
        """Move a job to its terminal state; ``False`` if already there."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if worker:
                record = self._worker(worker, now)
            if index in self._done:
                if worker:
                    record["duplicates"] += 1
                self.duplicates += 1
                return False
            self._done.add(index)
            if worker:
                record["completed"] += 1
                if not ok:
                    record["failed_jobs"] += 1
            if self.first_lease_at is None:
                self.first_lease_at = now
            self._check_done()
            return True

    # -- introspection ------------------------------------------------------

    def counts(self) -> JSONDict:
        with self._lock:
            return {
                "total": self.total,
                "queued": len(self._queue),
                "leased": len(self._leases),
                "done": len(self._done),
                "stolen": self.stolen,
                "duplicates": self.duplicates,
            }

    def worker_stats(self, now: Optional[float] = None) -> JSONDict:
        now = time.monotonic() if now is None else now
        with self._lock:
            held: Dict[str, int] = {}
            for index, worker, _ in self._leases.values():
                held[worker] = held.get(worker, 0) + 1
            return {
                name: {
                    "heartbeat_age_seconds": now - record["last_seen"],
                    "leases_held": held.get(name, 0),
                    "completed": record["completed"],
                    "failed_jobs": record["failed_jobs"],
                    "duplicates": record["duplicates"],
                    "stolen_from": record["stolen_from"],
                }
                for name, record in sorted(self.workers.items())
            }


# ---------------------------------------------------------------------------
# streaming outcome folding
# ---------------------------------------------------------------------------


class OutcomeFolder:
    """Folds each arriving outcome into cache + stats + the record spool.

    The coordinator's memory model lives here: an ``ok`` outcome is
    written to the result cache, its deterministic job record is dumped to
    one file in a sorted spool directory, its budget/elapsed fold into the
    per-cell Welford accumulators — and then the report is *dropped*.
    ``close()`` streams the spool, in job order, through
    :func:`write_sweep_json`, so the canonical ``--json-out`` document is
    produced without ever materializing the report list.
    """

    def __init__(
        self,
        jobs: Sequence[SweepJob],
        keys: Dict[int, Optional[str]],
        cache: AnyCache,
        json_out: Union[str, Path, None] = None,
        progress: Optional[ProgressFn] = None,
    ):
        self.jobs = jobs
        self.keys = keys
        self.cache = cache
        self.json_out = Path(json_out) if json_out else None
        self.progress = progress
        self._lock = threading.Lock()
        self._spool: Optional[tempfile.TemporaryDirectory] = None
        if self.json_out is not None:
            self._spool = tempfile.TemporaryDirectory(prefix="repro-sweep-records-")
        self._folded: set = set()
        self.counts = {"ok": 0, "failed": 0, "timeout": 0, "cached": 0}
        self.solve_seconds = 0.0
        self.cells = _CellStats()
        self.failures: List[JSONDict] = []

    @property
    def done(self) -> int:
        return len(self._folded)

    def fold(
        self,
        index: int,
        raw: JSONDict,
        cached: bool = False,
        worker: Optional[str] = None,
    ) -> bool:
        """Fold one outcome dict (the ``run_solve_job`` shape) for job ``index``.

        Returns ``False`` (and changes nothing) when the job was already
        folded — the duplicate-completion path.
        """
        job = self.jobs[index]
        key = self.keys.get(index)
        outcome = JobOutcome(
            job=job,
            status=raw.get("status", "failed"),
            cached=cached,
            key=key,
            report=raw.get("report"),
            error=raw.get("error"),
            elapsed_seconds=raw.get("elapsed_seconds", 0.0),
        )
        with self._lock:
            if index in self._folded:
                return False
            self._folded.add(index)
            self.counts[outcome.status] = self.counts.get(outcome.status, 0) + 1
            if cached:
                self.counts["cached"] += 1
            else:
                self.solve_seconds += outcome.elapsed_seconds
            if outcome.ok:
                self.cells.fold(
                    job.label, outcome.report, outcome.elapsed_seconds, cached
                )
                if not cached and key is not None:
                    store_solve_entry(
                        self.cache, key, job.solver, outcome.report,
                        outcome.elapsed_seconds,
                    )
            else:
                self.failures.append(
                    {
                        "label": job.label,
                        "status": outcome.status,
                        "worker": worker,
                        "error": outcome.error,
                    }
                )
            if self._spool is not None:
                path = Path(self._spool.name) / f"{index:08d}.json"
                path.write_text(dump_job_record(job_record(outcome)))
            done = len(self._folded)
        if self.progress is not None:
            self.progress(outcome, done, len(self.jobs))
        return True

    def fold_failure(self, index: int, error: str, worker: Optional[str] = None) -> bool:
        """Fold a synthetic failure (lease given up, spool corruption)."""
        return self.fold(
            index,
            {"status": "failed", "error": error, "elapsed_seconds": 0.0},
            worker=worker,
        )

    def close(self) -> None:
        """Emit the canonical sweep JSON from the sorted record spool.

        Takes the fold lock: a fold in flight on a handler thread has
        already bumped ``done`` but may still be writing its spool record,
        and close must not snapshot (or clean up) the spool under it.
        """
        with self._lock:
            if self._spool is None:
                return
            spool = Path(self._spool.name)

            def records() -> Iterator[str]:
                for name in sorted(os.listdir(spool)):
                    yield (spool / name).read_text()

            try:
                with open(self.json_out, "w") as fh:  # type: ignore[arg-type]
                    write_sweep_json(fh, records())
            finally:
                self._spool.cleanup()
                self._spool = None


# ---------------------------------------------------------------------------
# the coordinator
# ---------------------------------------------------------------------------


@dataclass
class DistributedSweepResult:
    """Summary of one coordinated sweep (no per-job reports — by design)."""

    total: int
    counts: JSONDict
    stolen: int
    duplicates: int
    wall_seconds: float
    solve_seconds: float
    #: fresh completions per second over the first-lease → finish window
    #: (0.0 when everything was served from cache)
    jobs_per_second: float
    workers: JSONDict
    failures: List[JSONDict] = field(default_factory=list)
    cells: JSONDict = field(default_factory=dict)
    json_out: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.counts.get("ok", 0) >= self.total

    @property
    def cache_hits(self) -> int:
        return self.counts.get("cached", 0)

    def summary_text(self) -> str:
        n = self.total
        parts = [f"{n} job{'s' if n != 1 else ''}: {self.counts.get('ok', 0)} ok"]
        if self.cache_hits:
            parts[-1] += f" ({self.cache_hits} cached)"
        for status in ("failed", "timeout"):
            if self.counts.get(status):
                parts.append(f"{self.counts[status]} {status}")
        if self.stolen:
            parts.append(f"{self.stolen} stolen")
        if self.duplicates:
            parts.append(f"{self.duplicates} duplicate")
        parts.append(
            f"wall {self.wall_seconds:.2f}s (solve {self.solve_seconds:.2f}s"
            + (f", {self.jobs_per_second:.1f} jobs/s" if self.jobs_per_second else "")
            + ")"
        )
        lines = [" · ".join(parts)]
        for name, record in sorted(self.workers.items()):
            lines.append(
                f"  worker {name}: {record['completed']} completed, "
                f"{record['failed_jobs']} failed, "
                f"{record['stolen_from']} stolen from, "
                f"{record['duplicates']} duplicate"
            )
        for failure in self.failures:
            who = f" [worker {failure['worker']}]" if failure.get("worker") else ""
            lines.append(
                f"  FAILED {failure['label']} ({failure['status']}){who}: "
                f"{failure['error']}"
            )
        return "\n".join(lines)


class SweepCoordinator:
    """Drives an expanded job list to completion via remote workers.

    Usage (HTTP transport)::

        coordinator = SweepCoordinator(spec.expand(), json_out="grid.json")
        host, port = coordinator.serve("127.0.0.1", 0)
        ... start `cli sweep-worker --connect host:port` anywhere ...
        result = coordinator.run()

    or spool transport::

        coordinator = SweepCoordinator(jobs, spool="/mnt/shared/sweep-7")
        result = coordinator.run()

    The cache pass happens in the constructor — hits are folded before any
    worker connects, so a warm-cache distributed run completes without
    workers at all, exactly like the single-host runner.
    """

    def __init__(
        self,
        sweep_jobs: Sequence[SweepJob],
        cache: Union[AnyCache, bool, None] = None,
        timeout: Optional[float] = None,
        lease_timeout: Optional[float] = None,
        max_steals: int = DEFAULT_MAX_STEALS,
        json_out: Union[str, Path, None] = None,
        spool: Union[str, Path, None] = None,
        progress: Optional[ProgressFn] = None,
    ):
        self.jobs = list(sweep_jobs)
        self.cache = coerce_cache(cache)
        self.timeout = timeout
        self.lease_timeout = (
            float(lease_timeout) if lease_timeout else default_lease_timeout(timeout)
        )
        self.started_at = time.monotonic()
        self._started_wall = time.time()
        self.keys: Dict[int, Optional[str]] = {
            job.index: sweep_job_key(job) for job in self.jobs
        }
        self.folder = OutcomeFolder(
            self.jobs, self.keys, self.cache, json_out=json_out, progress=progress
        )

        # cache pass: fold hits now, queue only the misses
        misses: List[int] = []
        for job in self.jobs:
            key = self.keys[job.index]
            entry = self.cache.get(key) if key else None
            if entry is not None and entry.get("status") == "ok":
                self.folder.fold(
                    job.index,
                    {
                        "status": "ok",
                        "report": entry.get("report"),
                        "elapsed_seconds": entry.get("elapsed_seconds", 0.0),
                    },
                    cached=True,
                )
            else:
                misses.append(job.index)

        self.board = LeaseBoard(
            total=len(self.jobs),
            queued=misses,
            lease_timeout=self.lease_timeout,
            max_steals=max_steals,
        )
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._spool: Optional[_SpoolPaths] = None
        if spool is not None:
            self._spool = _SpoolPaths(Path(spool))
            self._spool_publish(misses)

    # -- HTTP transport -----------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the coordinator's HTTP endpoint; returns ``(host, port)``.

        The server runs on a daemon thread; ``port=0`` picks a free port.
        """
        if self._server is not None:
            raise RuntimeError("coordinator is already serving")
        server = _CoordinatorHTTPServer((host, port), self)
        self._server = server
        self._server_thread = threading.Thread(
            target=server.serve_forever, name="sweep-coordinator", daemon=True
        )
        self._server_thread.start()
        bound_host, bound_port = server.server_address[:2]
        return bound_host, bound_port

    # -- protocol verbs (shared by the HTTP handler and tests) --------------

    def lease_json(self, worker: str) -> JSONDict:
        self._pump()
        if self.board.all_done.is_set():
            return {"job": None, "lease": None, "done": True}
        leased = self.board.lease(worker)
        if leased is None:
            return {
                "job": None,
                "lease": None,
                "done": self.board.all_done.is_set(),
                "poll_seconds": IDLE_POLL_SECONDS,
            }
        index, lease_id = leased
        return {
            "job": {"index": index, "payload": self._payload(index)},
            "lease": lease_id,
            "lease_timeout": self.board.lease_timeout,
            "done": False,
        }

    def complete_json(self, worker: str, lease: Optional[str], index: int,
                      outcome: JSONDict) -> JSONDict:
        if not isinstance(index, int) or not 0 <= index < len(self.jobs):
            raise ValueError(f"job index out of range: {index!r}")
        if not isinstance(outcome, dict) or "status" not in outcome:
            raise ValueError("outcome must be a dict with a 'status' field")
        accepted = self.board.complete(
            worker, lease, index, ok=outcome.get("status") == "ok"
        )
        if accepted:
            self.folder.fold(index, outcome, worker=worker)
        self._pump()
        return {"accepted": accepted, "duplicate": not accepted}

    def heartbeat_json(self, worker: str) -> JSONDict:
        self.board.heartbeat(worker)
        self._pump()
        return {"ok": True, "done": self.board.all_done.is_set()}

    def stats_json(self) -> JSONDict:
        """``GET /stats``: queue counters, per-worker liveness, cell stats."""
        from repro import __version__

        self._pump()
        return {
            "kind": "sweep-coordinator-stats",
            "version": __version__,
            "uptime_seconds": time.monotonic() - self.started_at,
            "lease_timeout": self.board.lease_timeout,
            "jobs": {**self.board.counts(), **self.folder.counts},
            "workers": self.board.worker_stats(),
            "cells": self.folder.cells.to_json(),
            "failures": list(self.folder.failures),
        }

    def _payload(self, index: int) -> JSONDict:
        job = self.jobs[index]
        return {
            "instance": job.instance,
            "solver": job.solver,
            "opts": job.opts,
            "timeout": self.timeout,
            # advisory: lets the worker write its local cache shard
            "key": self.keys[index],
        }

    def _pump(self) -> None:
        """Fold synthetic failures for jobs whose leases were exhausted."""
        for index, error in self.board.reap():
            self.folder.fold_failure(index, error)

    # -- spool transport ----------------------------------------------------

    def _spool_publish(self, misses: Sequence[int]) -> None:
        paths = self._spool
        assert paths is not None
        paths.create()
        for index in misses:
            payload = {"index": index, "payload": self._payload(index)}
            _atomic_write_json(paths.jobs / f"{index:08d}.json", payload)
        # readiness marker last: workers wait for it before scanning jobs/
        _atomic_write_json(
            paths.meta,
            {
                "kind": "sweep-spool",
                "total": len(self.jobs),
                "queued": len(misses),
                "lease_timeout": self.board.lease_timeout,
            },
        )

    def _spool_scan(self) -> None:
        """One poll of the spool: fold new results, steal stale claims."""
        paths = self._spool
        assert paths is not None
        now = time.monotonic()
        for path in sorted(paths.results.glob("*.json")):
            name_index = _index_of_spool_name(path.name)
            try:
                data = json.loads(path.read_text())
                index = int(data["index"])
                outcome = data["outcome"]
                worker = data.get("worker")
                if not isinstance(outcome, dict):
                    raise TypeError("outcome must be a dict")
            except (OSError, ValueError, KeyError, TypeError) as exc:
                path.unlink(missing_ok=True)
                if name_index is not None and self.board.force_done(name_index):
                    self.folder.fold_failure(
                        name_index, f"corrupt spool result {path.name}: {exc}"
                    )
                continue
            if self.board.force_done(
                index, worker=worker, ok=outcome.get("status") == "ok"
            ):
                self.folder.fold(index, outcome, worker=worker)
            path.unlink(missing_ok=True)
            (paths.claims / f"{index:08d}.json").unlink(missing_ok=True)
            (paths.claims / f"{index:08d}.json.worker").unlink(missing_ok=True)
        for claim in paths.claims.glob("*.json"):
            index = _index_of_spool_name(claim.name)
            if index is None:
                continue
            try:
                age = now - _monotonic_mtime(claim)
            except OSError:
                continue  # completed (and removed) under us
            if age <= self.board.lease_timeout:
                continue
            worker = _sidecar_worker(claim)
            steals = self.board.spool_steal(index, worker)
            if steals is None:
                claim.unlink(missing_ok=True)  # already completed elsewhere
            elif steals >= self.board.max_steals:
                claim.unlink(missing_ok=True)
                if self.board.force_done(index):
                    self.folder.fold_failure(
                        index,
                        f"lease expired {steals} times (last worker {worker!r}); "
                        "giving up on this job",
                        worker=worker,
                    )
            else:
                # steal: hand the job back to the queue via an atomic rename
                try:
                    os.rename(claim, paths.jobs / claim.name)
                except OSError:
                    pass  # the claiming worker finished in the window — fine
                (paths.claims / f"{claim.name}.worker").unlink(missing_ok=True)

    # -- the blocking drive loop --------------------------------------------

    def run(self, poll: float = 0.25) -> DistributedSweepResult:
        """Block until every job reaches a terminal outcome; fold and close.

        Works for both transports: the HTTP server answers on its own
        threads while this loop reaps expired leases; in spool mode the
        loop *is* the coordinator side of the protocol.
        """
        try:
            while not self.board.all_done.is_set():
                if self._spool is not None:
                    self._spool_scan()
                self._pump()
                self.board.all_done.wait(poll)
            self._pump()
            if self._spool is not None:
                self._spool_scan()
                self._spool.done.touch()
            # The board flips all_done inside the *final* complete(), before
            # the handler thread folds that outcome — wait for the folder to
            # catch up so close() never races an in-flight fold.
            deadline = time.monotonic() + 10.0
            while self.folder.done < len(self.jobs) and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            self.folder.close()
            self.close()
        return self.result()

    def result(self) -> DistributedSweepResult:
        counts = self.board.counts()
        fresh = self.folder.counts.get("ok", 0) - self.folder.counts.get("cached", 0)
        window = 0.0
        if self.board.first_lease_at is not None and self.board.finished_at is not None:
            window = self.board.finished_at - self.board.first_lease_at
        return DistributedSweepResult(
            total=len(self.jobs),
            counts=dict(self.folder.counts),
            stolen=counts["stolen"],
            duplicates=counts["duplicates"],
            wall_seconds=time.monotonic() - self.started_at,
            solve_seconds=self.folder.solve_seconds,
            jobs_per_second=(fresh / window) if window > 0 and fresh > 0 else 0.0,
            workers=self.board.worker_stats(),
            failures=list(self.folder.failures),
            cells=self.folder.cells.to_json(),
            json_out=str(self.folder.json_out) if self.folder.json_out else None,
        )

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._server_thread = None


def _index_of_spool_name(name: str) -> Optional[int]:
    stem = name.split(".", 1)[0]
    return int(stem) if stem.isdigit() else None


def _monotonic_mtime(path: Path) -> float:
    """A claim's mtime on the monotonic clock (for age comparisons).

    Heartbeats are ``os.utime`` touches, i.e. wall-clock stamps; mapping
    them through the current wall/monotonic offset keeps the comparison
    consistent with ``lease_timeout`` even if the wall clock steps.
    """
    return path.stat().st_mtime - time.time() + time.monotonic()


def _sidecar_worker(claim: Path) -> Optional[str]:
    try:
        return (claim.parent / f"{claim.name}.worker").read_text().strip() or None
    except OSError:
        return None


def _atomic_write_json(path: Path, payload: JSONDict) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class _SpoolPaths:
    """Directory layout of the shared-filesystem transport."""

    def __init__(self, root: Path):
        self.root = root
        self.jobs = root / "jobs"
        self.claims = root / "claims"
        self.results = root / "results"
        self.meta = root / "coordinator.json"
        self.done = root / "done"

    def create(self) -> None:
        for directory in (self.root, self.jobs, self.claims, self.results):
            directory.mkdir(parents=True, exist_ok=True)
        self.done.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# HTTP plumbing (the repro.serve idioms, sized for the 5-verb protocol)
# ---------------------------------------------------------------------------

#: request bodies above this are rejected with 413
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ProtocolError(ValueError):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _CoordinatorHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def coordinator(self) -> SweepCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        return  # the coordinator's progress callback is the log

    def _send(self, status: int, payload: JSONDict) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> JSONDict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _ProtocolError(400, "request body required (Content-Length missing)")
        if length > MAX_BODY_BYTES:
            raise _ProtocolError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _ProtocolError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise _ProtocolError(400, "request body must be a JSON object")
        return data

    def do_GET(self) -> None:  # noqa: N802  (http.server naming)
        if self.path == "/healthz":
            self._send(
                200,
                {
                    "status": "ok",
                    "role": "sweep-coordinator",
                    "done": self.coordinator.board.all_done.is_set(),
                },
            )
        elif self.path == "/stats":
            self._send(200, self.coordinator.stats_json())
        else:
            self._send(404, {"error": f"no such endpoint: GET {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path not in ("/lease", "/complete", "/heartbeat"):
            self._send(404, {"error": f"no such endpoint: POST {self.path}"})
            return
        try:
            data = self._read_json()
            worker = data.get("worker")
            if not isinstance(worker, str) or not worker:
                raise _ProtocolError(400, "'worker' must be a non-empty string")
            if self.path == "/lease":
                self._send(200, self.coordinator.lease_json(worker))
            elif self.path == "/heartbeat":
                self._send(200, self.coordinator.heartbeat_json(worker))
            else:
                self._send(
                    200,
                    self.coordinator.complete_json(
                        worker,
                        data.get("lease"),
                        data.get("index"),
                        data.get("outcome"),
                    ),
                )
        except _ProtocolError as exc:
            self._send(exc.status, {"error": str(exc)})
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — coordinator must not die per-request
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})


class _CoordinatorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], coordinator: SweepCoordinator):
        super().__init__(address, _CoordinatorHandler)
        self.coordinator = coordinator


# ---------------------------------------------------------------------------
# the worker side
# ---------------------------------------------------------------------------


class CoordinatorClient:
    """Keep-alive stdlib client for the coordinator protocol.

    The worker loop's transport, and executable documentation of the wire
    format (mirrors :class:`repro.serve.client.ServeClient`).
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        from http.client import HTTPConnection

        self.host = host
        self.port = port
        self.timeout = timeout
        self._make = lambda: HTTPConnection(host, port, timeout=timeout)
        self._conn = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CoordinatorClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: Optional[JSONDict] = None) -> JSONDict:
        from http.client import HTTPException

        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if self._conn is None:
            self._conn = self._make()
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
            status = response.status
        except (HTTPException, ConnectionError, BrokenPipeError):
            # Stale keep-alive: retry once on a fresh connection.
            self.close()
            self._conn = self._make()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
            status = response.status
        parsed = json.loads(data.decode("utf-8")) if data else {}
        if status >= 400:
            message = parsed.get("error", "unknown error") if isinstance(parsed, dict) else data
            raise RuntimeError(f"coordinator HTTP {status}: {message}")
        return parsed

    def wait_ready(self, timeout: float = 30.0, interval: float = 0.05) -> JSONDict:
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, RuntimeError, ValueError) as exc:
                last = exc
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"coordinator at {self.host}:{self.port} not ready after {timeout}s: {last}"
        )

    def healthz(self) -> JSONDict:
        return self._request("GET", "/healthz")

    def stats(self) -> JSONDict:
        return self._request("GET", "/stats")

    def lease(self, worker: str) -> JSONDict:
        return self._request("POST", "/lease", {"worker": worker})

    def complete(
        self, worker: str, lease: Optional[str], index: int, outcome: JSONDict
    ) -> JSONDict:
        return self._request(
            "POST",
            "/complete",
            {"worker": worker, "lease": lease, "index": index, "outcome": outcome},
        )

    def heartbeat(self, worker: str) -> JSONDict:
        return self._request("POST", "/heartbeat", {"worker": worker})


@dataclass
class WorkerSummary:
    """What one ``run_worker`` loop did before exiting."""

    worker: str
    completed: int = 0
    failed: int = 0
    duplicates: int = 0

    def summary_text(self) -> str:
        return (
            f"worker {self.worker}: {self.completed} completed "
            f"({self.failed} failed), {self.duplicates} duplicate"
        )


def _stall_for_tests() -> float:
    try:
        return float(os.environ.get(STALL_ENV, "") or 0.0)
    except ValueError:
        return 0.0


def _execute(payload: JSONDict, cache: AnyCache) -> JSONDict:
    """Run one leased payload and write the local cache shard on success."""
    outcome = run_solve_job(payload)
    key = payload.get("key")
    if outcome.get("status") == "ok" and key:
        store_solve_entry(
            cache,
            key,
            payload.get("solver", ""),
            outcome.get("report"),
            outcome.get("elapsed_seconds", 0.0),
        )
    return outcome


def run_worker(
    connect: Optional[Tuple[str, int]] = None,
    spool: Union[str, Path, None] = None,
    worker_id: Optional[str] = None,
    cache: Union[AnyCache, bool, None] = False,
    poll: float = IDLE_POLL_SECONDS,
    max_jobs: Optional[int] = None,
    ready_timeout: float = 30.0,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerSummary:
    """One worker loop: lease → solve → report, until the sweep is done.

    Exactly one of ``connect`` (``(host, port)`` of an HTTP coordinator)
    or ``spool`` (the shared directory) selects the transport.  ``cache``
    follows the runtime-wide convention (default ``False``: workers often
    share the coordinator's filesystem cache, in which case pass its
    directory; the coordinator writes every outcome to *its* cache
    regardless, so a cacheless worker loses nothing).

    Jobs execute on this thread via :func:`run_solve_job` — the identical
    code path as ``--jobs N`` pools and inline runs, which is what keeps
    distributed results byte-identical.  A heartbeat thread keeps leases
    alive while a long job runs; kill the process and the heartbeat dies
    with it, which is how the coordinator learns to steal the lease.
    """
    if (connect is None) == (spool is None):
        raise ValueError("run_worker needs exactly one of connect= or spool=")
    worker = worker_id or default_worker_id()
    cache_obj = coerce_cache(cache)
    stall = _stall_for_tests()
    say = log or (lambda message: None)
    if connect is not None:
        return _run_worker_http(
            connect, worker, cache_obj, poll, max_jobs, ready_timeout, stall, say
        )
    return _run_worker_spool(
        Path(spool), worker, cache_obj, poll, max_jobs, ready_timeout, stall, say
    )


def _run_worker_http(
    connect: Tuple[str, int],
    worker: str,
    cache: AnyCache,
    poll: float,
    max_jobs: Optional[int],
    ready_timeout: float,
    stall: float,
    say: Callable[[str], None],
) -> WorkerSummary:
    host, port = connect
    summary = WorkerSummary(worker=worker)
    client = CoordinatorClient(host, port)
    client.wait_ready(ready_timeout)
    stop = threading.Event()
    interval = poll  # refined from the first lease's lease_timeout

    def beat() -> None:
        # Separate connection: http.client is not thread-safe and the main
        # thread owns `client`.
        hb = CoordinatorClient(host, port)
        while not stop.wait(beat.interval):  # type: ignore[attr-defined]
            try:
                hb.heartbeat(worker)
            except (OSError, RuntimeError, ValueError):
                hb.close()  # coordinator gone/unreachable; keep trying
        hb.close()

    beat.interval = max(interval, 0.05)  # type: ignore[attr-defined]
    heartbeat_thread = threading.Thread(target=beat, name=f"heartbeat-{worker}", daemon=True)
    heartbeat_thread.start()
    try:
        while True:
            try:
                response = client.lease(worker)
            except (OSError, RuntimeError) as exc:
                # The coordinator tears its server down the moment the last
                # job lands, so losing it mid-poll means the sweep is over
                # (or it crashed — either way there is nothing left to lease).
                say(f"[{worker}] coordinator gone ({exc}); exiting")
                break
            if response.get("done"):
                break
            job = response.get("job")
            if job is None:
                time.sleep(response.get("poll_seconds", poll))
                continue
            lease_timeout = response.get("lease_timeout")
            if lease_timeout:
                beat.interval = max(min(lease_timeout / 4.0, 5.0), 0.05)  # type: ignore[attr-defined]
            if stall:
                time.sleep(stall)
            outcome = _execute(job["payload"], cache)
            try:
                verdict = client.complete(worker, response.get("lease"), job["index"], outcome)
            except (OSError, RuntimeError) as exc:
                say(f"[{worker}] coordinator gone before complete ({exc}); exiting")
                break
            if verdict.get("duplicate"):
                summary.duplicates += 1
            else:
                summary.completed += 1
                if outcome.get("status") != "ok":
                    summary.failed += 1
            say(f"[{worker}] job {job['index']}: {outcome.get('status')}")
            if max_jobs is not None and summary.completed + summary.duplicates >= max_jobs:
                break
    finally:
        stop.set()
        heartbeat_thread.join(timeout=2.0)
        client.close()
    return summary


def _run_worker_spool(
    root: Path,
    worker: str,
    cache: AnyCache,
    poll: float,
    max_jobs: Optional[int],
    ready_timeout: float,
    stall: float,
    say: Callable[[str], None],
) -> WorkerSummary:
    paths = _SpoolPaths(root)
    summary = WorkerSummary(worker=worker)
    deadline = time.monotonic() + ready_timeout
    while not paths.meta.exists():
        if time.monotonic() > deadline:
            raise TimeoutError(f"no coordinator at spool {root} after {ready_timeout}s")
        time.sleep(min(poll, 0.1))
    while True:
        claimed: Optional[Path] = None
        for job_file in sorted(paths.jobs.glob("*.json")):
            target = paths.claims / job_file.name
            try:
                os.rename(job_file, target)  # atomic: exactly one winner
            except OSError:
                continue  # lost the race for this job; try the next
            claimed = target
            break
        if claimed is None:
            if paths.done.exists():
                break
            time.sleep(poll)
            continue
        try:
            data = json.loads(claimed.read_text())
            index, payload = int(data["index"]), data["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            claimed.unlink(missing_ok=True)  # corrupt job file; drop the claim
            continue
        (paths.claims / f"{claimed.name}.worker").write_text(worker)
        stop = threading.Event()

        def keep_alive(path: Path = claimed, stop: threading.Event = stop) -> None:
            while not stop.wait(max(poll, 0.05)):
                try:
                    os.utime(path)
                except OSError:
                    return  # claim stolen and renamed away — stop touching
        heartbeat_thread = threading.Thread(
            target=keep_alive, name=f"heartbeat-{worker}", daemon=True
        )
        heartbeat_thread.start()
        try:
            if stall:
                time.sleep(stall)
            outcome = _execute(payload, cache)
        finally:
            stop.set()
            heartbeat_thread.join(timeout=2.0)
        _atomic_write_json(
            paths.results / f"{index:08d}.json",
            {"index": index, "worker": worker, "outcome": outcome},
        )
        summary.completed += 1
        if outcome.get("status") != "ok":
            summary.failed += 1
        say(f"[{worker}] job {index}: {outcome.get('status')}")
        if max_jobs is not None and summary.completed >= max_jobs:
            break
    return summary
