"""Theorem 12: all-or-nothing SNE is inapproximable within any factor.

Reduction from 3SAT (the paper uses 3SAT-4; occurrences <= 4 only bound the
number of variable labels by 9, and our builder accepts any occurrence
count, chaining consistency gadgets between consecutive appearances).

Construction (Figures 5-7), per appearance of literal ``l`` in clause ``c``
whose variable has label ``j`` (write ``n = n_j``):

* a **literal gadget** with light chain ``l(c,l) -1- u(c,l̄) -1- u(c,l)``
  (nodes ``mid`` / ``end`` here), heavy tree edges ``(l(c,l), v1)``,
  ``(v1, v2)``, ``(v3, u(c,l))`` of weight ``K``, and heavy non-tree edges
  ``(l(c,l), v3)`` of weight ``K + 1/(n-3)`` and ``(v2, u(c,l))`` of weight
  ``3K/2 - 1/(n+1)``;
* literal gadgets of a clause chain in increasing label order, starting at
  the root; a **clause node** ``v(c)`` hangs off the last gadget (tree edge
  ``K``) with a non-tree escape to the root of weight
  ``K + 1/n_{j1} + 1/(n_{j2}-3) + 1/(n_{j3}-3)``;
* **consistency gadgets** between consecutive appearances of a variable
  (node pairs ``u1 / u2`` with the weights of Section 5);
* **auxiliary players** pad the light-edge usage counts to exactly ``n_j``
  and ``n_j - 3``.  The paper attaches them as zero-weight star leaves; we
  attach a single zero-weight node with an integer player *multiplicity*,
  which is game-theoretically identical (see DESIGN.md) and lets the
  astronomical ``n_j`` counts exist as plain integers.

Label constants follow the paper's recurrence ``n_{j-1} = 4 n_j^2`` with
``n_L = 7`` for the largest used label ``L`` (a compressed relabeling of the
paper's fixed 9-label schedule; all inequalities used in Lemmas 13-19 only
depend on the recurrence, monotonicity and the base value 7).

Because the cost gaps separating "equilibrium" from "deviation" shrink to
``~1/n_1^2`` (below float64 resolution for 3+ labels), the module ships an
**exact-rational equilibrium checker** over ``fractions.Fraction`` edge
weights; the float game is still constructed for interoperability with the
rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.graphs.shortest_paths import dijkstra
from repro.games.broadcast import BroadcastGame, TreeState
from repro.hardness.solvers.sat import CNFFormula, dpll_solve, is_3sat
from repro.subsidies.assignment import SubsidyAssignment

#: A signed literal key: (variable, sign) with sign True for positive.
LitKey = Tuple[int, bool]


def label_variables(formula: CNFFormula) -> Dict[int, int]:
    """Greedy-color the variable conflict graph (co-occurrence) with labels
    ``1..L``.  For 3SAT-4 at most 9 labels are needed (paper); in general L
    is at most 1 + max conflict degree."""
    conflicts: Dict[int, Set[int]] = {v: set() for v in range(1, formula.n_vars + 1)}
    for cl in formula.clauses:
        vs = [abs(x) for x in cl]
        for a in vs:
            for b in vs:
                if a != b:
                    conflicts[a].add(b)
    labels: Dict[int, int] = {}
    for v in sorted(conflicts, key=lambda u: -len(conflicts[u])):
        used = {labels[w] for w in conflicts[v] if w in labels}
        j = 1
        while j in used:
            j += 1
        labels[v] = j
    return labels


def label_constants(n_labels: int, base: int = 7) -> Dict[int, int]:
    """``n_j`` per label: ``n_L = base`` and ``n_{j-1} = 4 n_j^2``."""
    if base < 7:
        raise ValueError("the Lemma 17 inequalities need the base >= 7")
    out: Dict[int, int] = {n_labels: base}
    for j in range(n_labels - 1, 0, -1):
        out[j] = 4 * out[j + 1] ** 2
    return out


@dataclass
class LiteralGadget:
    """Node/edge bookkeeping for one literal appearance."""

    clause: int
    position: int  # 0..2 in increasing-label order
    literal: int  # signed
    label: int
    n: int  # n_{label}
    anchor: Node  # l(c, l): the root or the previous gadget's end node
    mid: Node  # u(c, l̄)
    end: Node  # u(c, l)
    v1: Node
    v2: Node
    v3: Node
    first_light: Edge = None  # (anchor, mid)
    second_light: Edge = None  # (mid, end)


@dataclass
class ConsistencyGadget:
    """One u1/u2 pair between consecutive appearances of a variable."""

    var: int
    same_sign: bool
    earlier: Tuple[int, int]  # (clause, position)
    later: Tuple[int, int]
    u1: Node
    u2: Node


@dataclass
class Theorem12Instance:
    """The constructed broadcast game plus everything the lemmas talk about."""

    formula: CNFFormula
    game: BroadcastGame
    target: TreeState
    K: Fraction
    labels: Dict[int, int]
    n_of_label: Dict[int, int]
    gadgets: Dict[Tuple[int, int], LiteralGadget]
    consistency: List[ConsistencyGadget]
    exact_weights: Dict[Edge, Fraction]
    #: E(l) of the paper: light edges whose subsidization encodes "l is true"
    e_sets: Dict[LitKey, FrozenSet[Edge]]
    aux_multiplicity: Dict[Node, int] = field(default_factory=dict)

    @property
    def root(self) -> Node:
        return self.game.root

    def light_edges(self) -> List[Edge]:
        out = []
        for gadget in self.gadgets.values():
            out.extend([gadget.first_light, gadget.second_light])
        return out

    # -- structural predicates (Lemmas 14, 16/17, 19) -----------------------

    def is_balanced(self, subsidized: Iterable[Edge]) -> bool:
        """Exactly one light edge per literal gadget is subsidized."""
        chosen = {canonical_edge(*e) for e in subsidized}
        if not chosen <= set(self.light_edges()):
            return False
        return all(
            (g.first_light in chosen) != (g.second_light in chosen)
            for g in self.gadgets.values()
        )

    def is_consistent(self, subsidized: Iterable[Edge]) -> bool:
        """Balanced, and per variable the choice matches E(x) or E(x̄)."""
        chosen = {canonical_edge(*e) for e in subsidized}
        if not self.is_balanced(chosen):
            return False
        for var in range(1, self.formula.n_vars + 1):
            pos, neg = self.e_sets.get((var, True)), self.e_sets.get((var, False))
            if pos is None:
                continue  # variable does not occur
            if not (pos <= chosen and not (neg & chosen)) and not (
                neg <= chosen and not (pos & chosen)
            ):
                return False
        return True

    def clauses_covered(self, subsidized: Iterable[Edge]) -> bool:
        """Every clause has some literal gadget's *second* edge subsidized."""
        chosen = {canonical_edge(*e) for e in subsidized}
        for ci in range(self.formula.n_clauses):
            if not any(
                self.gadgets[(ci, p)].second_light in chosen for p in range(3)
            ):
                return False
        return True

    def characterization_holds(self, subsidized: Iterable[Edge]) -> bool:
        """Lemma 19's combinatorial criterion for light enforcement."""
        chosen = {canonical_edge(*e) for e in subsidized}
        return self.is_consistent(chosen) and self.clauses_covered(chosen)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def build_theorem12_instance(
    formula: CNFFormula,
    K: Optional[Fraction] = None,
    base_n: int = 7,
) -> Theorem12Instance:
    """Build the Theorem 12 broadcast game for a 3SAT formula."""
    if not is_3sat(formula):
        raise ValueError("the reduction needs exactly-3-distinct-variable clauses")
    labels = label_variables(formula)
    n_labels = max(labels.values())
    if n_labels > 8:
        raise ValueError(
            "more than 8 labels would need player counts beyond float range; "
            "use a formula with lower variable-conflict degree"
        )
    n_of = label_constants(n_labels, base=base_n)
    if K is None:
        K = Fraction(max(50, 30 * formula.n_clauses))

    graph = Graph()
    root: Node = "r"
    graph.add_node(root)
    exact: Dict[Edge, Fraction] = {}
    tree_edges: List[Edge] = []
    multiplicity: Dict[Node, int] = {}

    def add(u: Node, v: Node, w: Fraction, in_tree: bool) -> Edge:
        e = canonical_edge(u, v)
        graph.add_edge(u, v, float(w))
        exact[e] = w
        if in_tree:
            tree_edges.append(e)
        return e

    # --- literal gadgets, chained per clause in increasing label order ----
    gadgets: Dict[Tuple[int, int], LiteralGadget] = {}
    for ci, clause in enumerate(formula.clauses):
        ordered = sorted(clause, key=lambda lit: labels[abs(lit)])
        anchor: Node = root
        for p, lit in enumerate(ordered):
            j = labels[abs(lit)]
            n = n_of[j]
            mid: Node = ("mid", ci, p)
            end: Node = ("end", ci, p)
            v1: Node = ("v1", ci, p)
            v2: Node = ("v2", ci, p)
            v3: Node = ("v3", ci, p)
            g = LiteralGadget(ci, p, lit, j, n, anchor, mid, end, v1, v2, v3)
            g.first_light = add(anchor, mid, Fraction(1), in_tree=True)
            g.second_light = add(mid, end, Fraction(1), in_tree=True)
            add(anchor, v1, K, in_tree=True)
            add(v1, v2, K, in_tree=True)
            add(v3, end, K, in_tree=True)
            add(anchor, v3, K + Fraction(1, n - 3), in_tree=False)
            add(v2, end, Fraction(3, 2) * K - Fraction(1, n + 1), in_tree=False)
            gadgets[(ci, p)] = g
            anchor = end
        # Clause node v(c) off the last gadget.
        vc: Node = ("vc", ci)
        add(vc, gadgets[(ci, 2)].end, K, in_tree=True)
        j0, j1, j2 = (gadgets[(ci, p)].n for p in range(3))
        add(
            vc,
            root,
            K + Fraction(1, j0) + Fraction(1, j1 - 3) + Fraction(1, j2 - 3),
            in_tree=False,
        )

    # --- consistency gadgets between consecutive appearances ---------------
    consistency: List[ConsistencyGadget] = []
    t_mid: Dict[Tuple[int, int], int] = {key: 0 for key in gadgets}
    t_end: Dict[Tuple[int, int], int] = {key: 0 for key in gadgets}
    occ_position: Dict[Tuple[int, int], int] = {}
    for (ci, p), g in gadgets.items():
        occ_position[(ci, abs(g.literal))] = p

    for var in range(1, formula.n_vars + 1):
        occs = formula.occurrences(var)
        if len(occs) < 2:
            continue
        n = n_of[labels[var]]
        for k, ((ca, lit_a), (cb, lit_b)) in enumerate(zip(occs, occs[1:])):
            pa, pb = occ_position[(ca, var)], occ_position[(cb, var)]
            ga, gb = gadgets[(ca, pa)], gadgets[(cb, pb)]
            u1: Node = ("u1", var, k)
            u2: Node = ("u2", var, k)
            same = (lit_a > 0) == (lit_b > 0)
            if same:
                # l-l gadget: both u's tree-attach at the *mid* nodes.
                add(u1, ga.mid, K, in_tree=True)
                add(u1, gb.mid, K + Fraction(1, 2 * n), in_tree=False)
                add(u2, gb.mid, K, in_tree=True)
                add(u2, ga.mid, K + Fraction(1, 2 * n), in_tree=False)
                t_mid[(ca, pa)] += 1
                t_mid[(cb, pb)] += 1
            else:
                # l-l̄ gadget: u1 at the earlier *end*, u2 at the later *mid*.
                add(u1, ga.end, K, in_tree=True)
                add(u1, gb.mid, K + Fraction(1, n) + Fraction(1, 2 * n * n), in_tree=False)
                add(u2, gb.mid, K, in_tree=True)
                add(u2, ga.end, K, in_tree=False)
                t_end[(ca, pa)] += 1
                t_mid[(cb, pb)] += 1
            consistency.append(
                ConsistencyGadget(var, same, (ca, pa), (cb, pb), u1, u2)
            )

    # --- auxiliary multiplicities to pin the light-edge usage counts ------
    aux_multiplicity: Dict[Node, int] = {}
    for (ci, p), g in gadgets.items():
        tm, te = t_mid[(ci, p)], t_end[(ci, p)]
        if tm > 2 or te > 1:  # pragma: no cover - structurally impossible
            raise AssertionError("consistency attachment counts out of range")
        m_mid = 2 - tm
        if p < 2:
            n_next = gadgets[(ci, p + 1)].n
            m_end = g.n - n_next - 7 - te
        else:
            m_end = g.n - 6 - te
        if m_end < 0:  # pragma: no cover - prevented by base >= 7
            raise AssertionError("negative auxiliary count; schedule too small")
        if m_mid > 0:
            node = ("auxm", ci, p)
            add(node, g.mid, Fraction(0), in_tree=True)
            aux_multiplicity[node] = m_mid
        if m_end > 0:
            node = ("auxe", ci, p)
            add(node, g.end, Fraction(0), in_tree=True)
            aux_multiplicity[node] = m_end

    game = BroadcastGame(graph, root=root, multiplicity=aux_multiplicity)
    target = game.tree_state(tree_edges)

    # --- the E(l) sets ------------------------------------------------------
    e_sets: Dict[LitKey, Set[Edge]] = {}
    for g in gadgets.values():
        var, sign = abs(g.literal), g.literal > 0
        e_sets.setdefault((var, sign), set()).add(g.second_light)
        e_sets.setdefault((var, not sign), set()).add(g.first_light)
    frozen = {k: frozenset(v) for k, v in e_sets.items()}

    inst = Theorem12Instance(
        formula=formula,
        game=game,
        target=target,
        K=K,
        labels=labels,
        n_of_label=n_of,
        gadgets=gadgets,
        consistency=consistency,
        exact_weights=exact,
        e_sets=frozen,
        aux_multiplicity=aux_multiplicity,
    )
    _validate_usage_counts(inst)
    return inst


def _validate_usage_counts(inst: Theorem12Instance) -> None:
    """The auxiliary padding must hit the paper's counts exactly:
    ``n_a = n_j`` on first light edges and ``n_j - 3`` on second ones."""
    loads = inst.target.loads
    for g in inst.gadgets.values():
        if loads[g.first_light] != g.n or loads[g.second_light] != g.n - 3:
            raise AssertionError(
                f"light-edge usage counts off for gadget {(g.clause, g.position)}: "
                f"{loads[g.first_light]} vs n={g.n}, "
                f"{loads[g.second_light]} vs n-3={g.n - 3}"
            )


# ---------------------------------------------------------------------------
# Assignment <-> subsidy mappings (the Corollary 20 bijection)
# ---------------------------------------------------------------------------


def assignment_to_subsidized_edges(
    inst: Theorem12Instance, assignment: Dict[int, bool]
) -> Set[Edge]:
    """The consistent balanced light assignment encoding a truth assignment:
    subsidize ``E(x)`` when ``x`` is true, else ``E(x̄)``."""
    chosen: Set[Edge] = set()
    for var in range(1, inst.formula.n_vars + 1):
        key = (var, bool(assignment.get(var, False)))
        if key in inst.e_sets:
            chosen |= set(inst.e_sets[key])
    return chosen


def subsidized_edges_to_assignment(
    inst: Theorem12Instance, subsidized: Iterable[Edge]
) -> Optional[Dict[int, bool]]:
    """Inverse mapping; ``None`` when the set is not consistent balanced."""
    chosen = {canonical_edge(*e) for e in subsidized}
    if not inst.is_consistent(chosen):
        return None
    out: Dict[int, bool] = {}
    for var in range(1, inst.formula.n_vars + 1):
        pos = inst.e_sets.get((var, True))
        if pos is None:
            out[var] = False
            continue
        out[var] = pos <= chosen
    return out


def subsidies_from_edges(inst: Theorem12Instance, subsidized: Iterable[Edge]) -> SubsidyAssignment:
    """A float :class:`SubsidyAssignment` fully subsidizing the given
    (light, unit-weight) edges."""
    return SubsidyAssignment.full_on(inst.game.graph, subsidized)


# ---------------------------------------------------------------------------
# Exact-rational equilibrium checking
# ---------------------------------------------------------------------------


def _exact_player_cost(
    inst: Theorem12Instance, node: Node, b: Dict[Edge, Fraction]
) -> Fraction:
    total = Fraction(0)
    for e in inst.target.tree.path_to_root(node):
        w = inst.exact_weights[e] - b.get(e, Fraction(0))
        total += w / inst.target.loads[e]
    return total


def exact_light_assignment_check(
    inst: Theorem12Instance,
    subsidized: Iterable[Edge],
    find_all: bool = False,
) -> Tuple[bool, List[Tuple[Node, Fraction, Fraction]]]:
    """Exact equilibrium check of the target tree under a light assignment.

    Runs a Fraction-weighted best-response Dijkstra for every *structural*
    player.  Auxiliary players are skipped: each rides a single zero-weight
    edge to its host node, so its strategies and costs coincide with the
    host player's (Lemma 13 covers them).

    Returns ``(is_equilibrium, violations)`` with exact costs.
    """
    chosen = {canonical_edge(*e) for e in subsidized}
    light = set(inst.light_edges())
    if not chosen <= light:
        raise ValueError("only light edges may be subsidized in a light assignment")
    b: Dict[Edge, Fraction] = {e: inst.exact_weights[e] for e in chosen}

    graph = inst.game.graph
    loads = inst.target.loads
    tree = inst.target.tree
    violations: List[Tuple[Node, Fraction, Fraction]] = []

    for node in graph.nodes:
        if node == inst.root or node in inst.aux_multiplicity:
            continue
        current = _exact_player_cost(inst, node, b)
        if current == 0:
            continue
        own = set(tree.path_to_root(node))

        def weight_fn(u: Node, v: Node) -> Fraction:
            e = canonical_edge(u, v)
            w = inst.exact_weights[e] - b.get(e, Fraction(0))
            denom = loads.get(e, 0) + 1 - (1 if e in own else 0)
            return w / denom

        dist, _ = dijkstra(graph, node, weight_fn=weight_fn, target=inst.root)
        best = dist[inst.root]
        if best < current:
            violations.append((node, current, best))
            if not find_all:
                return False, violations
    return not violations, violations


def light_enforcement_exists(
    inst: Theorem12Instance,
) -> Tuple[bool, Optional[Set[Edge]]]:
    """Corollary 20, executed: a light assignment enforcing ``T`` exists iff
    the formula is satisfiable; when it does, return one (via DPLL)."""
    assignment = dpll_solve(inst.formula)
    if assignment is None:
        return False, None
    chosen = assignment_to_subsidized_edges(inst, assignment)
    ok, _ = exact_light_assignment_check(inst, chosen)
    if not ok:  # pragma: no cover - would falsify Theorem 12
        raise AssertionError("reduction violated: satisfying assignment not enforcing")
    return True, chosen
