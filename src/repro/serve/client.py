"""Minimal stdlib client for the solver daemon.

:class:`ServeClient` wraps :class:`http.client.HTTPConnection` with the
daemon's JSON conventions: it is what the tests, the CI ``serve-smoke``
job and ``benchmarks/bench_serve.py`` use, and doubles as executable
documentation of the wire protocol.

The ``*_raw`` methods return the exact response body **bytes** — the
canonical form the byte-identity guarantees are stated in — while the
plain methods return parsed JSON for convenience::

    client = ServeClient("127.0.0.1", 8350)
    client.wait_ready()
    report = client.solve(instance_json, "sne-lp2")
    assert client.solve_raw(instance_json, "sne-lp2")[0] == cli_bytes
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

JSONDict = Dict[str, Any]


class ServeError(RuntimeError):
    """A non-2xx daemon response.

    Carries the HTTP ``status``, the server's ``message`` (from the
    ``{"error": ...}`` body) and ``retry_after`` seconds when the daemon
    sent a 429.
    """

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServeClient:
    """One keep-alive connection to a running solver daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8350, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # -- connection plumbing ------------------------------------------------

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: Optional[JSONDict] = None
    ) -> Tuple[bytes, int]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        except (HTTPException, ConnectionError, BrokenPipeError):
            # Stale keep-alive (daemon restarted, idle timeout): retry once
            # on a fresh connection before giving up.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        if status >= 400:
            try:
                message = json.loads(data.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = data.decode("utf-8", "replace").strip() or "unknown error"
            raise ServeError(
                status, message, retry_after=float(retry_after) if retry_after else None
            )
        return data, status

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> JSONDict:
        """Poll ``/healthz`` until the daemon answers; returns its body.

        Raises :class:`TimeoutError` if the daemon never comes up — used by
        everything that launches the daemon as a subprocess.
        """
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, HTTPException, ServeError) as exc:
                last = exc
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"daemon at {self.host}:{self.port} not ready after {timeout}s: {last}"
        )

    # -- solve endpoints (raw bytes + parsed) -------------------------------

    def solve_raw(
        self, instance: JSONDict, solver: str, opts: Optional[JSONDict] = None
    ) -> Tuple[bytes, int]:
        """``POST /solve`` → ``(body bytes, status)``; bytes are canonical."""
        payload: JSONDict = {"instance": instance, "solver": solver}
        if opts:
            payload["opts"] = opts
        return self._request("POST", "/solve", payload)

    def solve(
        self, instance: JSONDict, solver: str, opts: Optional[JSONDict] = None
    ) -> JSONDict:
        """``POST /solve`` → the canonical report, parsed."""
        data, _ = self.solve_raw(instance, solver, opts)
        return json.loads(data.decode("utf-8"))

    def solve_batch_raw(
        self,
        instances: Union[Sequence[JSONDict], JSONDict],
        solvers: Union[str, Sequence[str]],
        opts: Optional[JSONDict] = None,
    ) -> Tuple[bytes, int]:
        payload: JSONDict = {
            "instances": list(instances) if not isinstance(instances, dict) else instances,
            "solvers": [solvers] if isinstance(solvers, str) else list(solvers),
        }
        if opts:
            payload["opts"] = opts
        return self._request("POST", "/solve-batch", payload)

    def solve_batch(
        self,
        instances: Union[Sequence[JSONDict], JSONDict],
        solvers: Union[str, Sequence[str]],
        opts: Optional[JSONDict] = None,
    ) -> List[List[JSONDict]]:
        data, _ = self.solve_batch_raw(instances, solvers, opts)
        return json.loads(data.decode("utf-8"))

    def sweep_raw(self, spec: JSONDict) -> Tuple[bytes, int]:
        return self._request("POST", "/sweep", {"spec": spec})

    def sweep(self, spec: JSONDict) -> JSONDict:
        data, _ = self.sweep_raw(spec)
        return json.loads(data.decode("utf-8"))

    # -- introspection ------------------------------------------------------

    def _get_json(self, path: str) -> JSONDict:
        data, _ = self._request("GET", path)
        return json.loads(data.decode("utf-8"))

    def healthz(self) -> JSONDict:
        return self._get_json("/healthz")

    def version(self) -> str:
        return self._get_json("/version")["version"]

    def stats(self) -> JSONDict:
        return self._get_json("/stats")

    def solvers(self) -> List[JSONDict]:
        return self._get_json("/solvers")["solvers"]

    def families(self) -> JSONDict:
        return self._get_json("/families")
