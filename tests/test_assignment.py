"""Tests for SubsidyAssignment."""

import numpy as np
import pytest

from repro.graphs import Graph
from repro.subsidies import SubsidyAssignment


@pytest.fixture
def g():
    return Graph.from_edges([(0, 1, 2.0), (1, 2, 1.0), (0, 2, 3.0)])


class TestValidation:
    def test_basic(self, g):
        s = SubsidyAssignment(g, {(0, 1): 1.5})
        assert s[(1, 0)] == 1.5
        assert s.cost == 1.5

    def test_rejects_non_edge(self, g):
        with pytest.raises(ValueError):
            SubsidyAssignment(g, {(0, 9): 1.0})

    def test_rejects_over_weight(self, g):
        with pytest.raises(ValueError):
            SubsidyAssignment(g, {(1, 2): 1.5})

    def test_rejects_negative(self, g):
        with pytest.raises(ValueError):
            SubsidyAssignment(g, {(1, 2): -0.5})

    def test_clips_roundoff(self, g):
        s = SubsidyAssignment(g, {(1, 2): 1.0 + 1e-9, (0, 1): -1e-9})
        assert s.get((1, 2)) == 1.0
        assert s.get((0, 1)) == 0.0
        assert (0, 1) not in s

    def test_zero_entries_dropped(self, g):
        s = SubsidyAssignment(g, {(0, 1): 0.0})
        assert len(s) == 0


class TestMappingProtocol:
    def test_get_default(self, g):
        s = SubsidyAssignment(g, {(0, 1): 1.0})
        assert s.get((1, 2)) == 0.0
        assert s.get((1, 2), 7.0) == 7.0

    def test_canonicalizes_keys(self, g):
        s = SubsidyAssignment(g, {(1, 0): 1.0})
        assert s[(0, 1)] == 1.0
        assert (1, 0) in s

    def test_contains_garbage(self, g):
        s = SubsidyAssignment(g, {})
        assert 42 not in s

    def test_iteration(self, g):
        s = SubsidyAssignment(g, {(0, 1): 1.0, (1, 2): 0.5})
        assert set(s) == {(0, 1), (1, 2)}
        assert len(s) == 2


class TestQuantities:
    def test_cost_on_subset(self, g):
        s = SubsidyAssignment(g, {(0, 1): 1.0, (1, 2): 0.5})
        assert s.cost_on([(0, 1)]) == 1.0
        assert s.cost_on([(0, 1), (0, 2)]) == 1.0

    def test_fraction(self, g):
        s = SubsidyAssignment(g, {(0, 1): 1.0})
        assert s.fraction_of(4.0) == 0.25
        with pytest.raises(ValueError):
            s.fraction_of(0.0)

    def test_all_or_nothing_detection(self, g):
        assert SubsidyAssignment(g, {(1, 2): 1.0}).is_all_or_nothing()
        assert SubsidyAssignment(g, {}).is_all_or_nothing()
        assert not SubsidyAssignment(g, {(0, 1): 1.0}).is_all_or_nothing()

    def test_subsidized_edges(self, g):
        s = SubsidyAssignment(g, {(0, 1): 2.0})
        assert s.subsidized_edges() == ((0, 1),)


class TestConstructors:
    def test_zero(self, g):
        assert SubsidyAssignment.zero(g).cost == 0.0

    def test_full_on(self, g):
        s = SubsidyAssignment.full_on(g, [(0, 1), (1, 2)])
        assert s.cost == 3.0
        assert s.is_all_or_nothing()

    def test_from_vector(self, g):
        s = SubsidyAssignment.from_vector(g, [(0, 1), (1, 2)], np.array([0.5, 1.0]))
        assert s.cost == 1.5

    def test_combined_with(self, g):
        a = SubsidyAssignment(g, {(0, 1): 0.5})
        b = SubsidyAssignment(g, {(0, 1): 0.5, (1, 2): 1.0})
        c = a.combined_with(b)
        assert c[(0, 1)] == 1.0
        assert c.cost == 2.0

    def test_combined_rejects_overflow(self, g):
        a = SubsidyAssignment(g, {(1, 2): 1.0})
        with pytest.raises(ValueError):
            a.combined_with(a)
