"""Tests for the general network design game model."""

import pytest

from repro.games import NetworkDesignGame
from repro.graphs import Graph


@pytest.fixture
def diamond():
    #   0 --1-- 1
    #   |       |
    #   4       1
    #   |       |
    #   2 --1-- 3
    return Graph.from_edges([(0, 1, 1.0), (1, 3, 1.0), (0, 2, 4.0), (2, 3, 1.0)])


class TestGameConstruction:
    def test_basic(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (2, 3)])
        assert game.n_players == 2
        assert game.players[0].source == 0

    def test_bad_terminal(self, diamond):
        with pytest.raises(ValueError):
            NetworkDesignGame(diamond, [(0, 99)])

    def test_identical_terminals(self, diamond):
        with pytest.raises(ValueError):
            NetworkDesignGame(diamond, [(1, 1)])


class TestState:
    def test_usage_counts(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (2, 3)])
        st = game.state([[0, 1, 3], [2, 3]])
        assert st.usage == {(0, 1): 1, (1, 3): 1, (2, 3): 1}

    def test_shared_edge_usage(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (1, 3)])
        st = game.state([[0, 1, 3], [1, 3]])
        assert st.usage[(1, 3)] == 2

    def test_wrong_number_of_paths(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3)])
        with pytest.raises(ValueError):
            game.state([[0, 1, 3], [2, 3]])

    def test_wrong_endpoints(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3)])
        with pytest.raises(ValueError):
            game.state([[0, 1]])

    def test_non_simple_path_rejected(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = NetworkDesignGame(g, [(0, 2)])
        with pytest.raises(ValueError):
            game.state([[0, 1, 0, 1, 2]])

    def test_non_edge_rejected(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3)])
        with pytest.raises(ValueError):
            game.state([[0, 3]])

    def test_social_cost(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (2, 3)])
        st = game.state([[0, 1, 3], [2, 3]])
        assert st.social_cost() == pytest.approx(3.0)

    def test_player_cost_fair_sharing(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (1, 3)])
        st = game.state([[0, 1, 3], [1, 3]])
        # Edge (1,3) shared by both: each pays 0.5 there.
        assert st.player_cost(0) == pytest.approx(1.0 + 0.5)
        assert st.player_cost(1) == pytest.approx(0.5)

    def test_player_cost_with_subsidies(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3)])
        st = game.state([[0, 1, 3]])
        assert st.player_cost(0, {(0, 1): 1.0}) == pytest.approx(1.0)

    def test_total_player_cost_equals_social_cost(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (2, 3), (1, 3)])
        st = game.state([[0, 1, 3], [2, 3], [1, 3]])
        assert st.total_player_cost() == pytest.approx(st.social_cost())

    def test_subsidies_reduce_total_cost(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (2, 3)])
        st = game.state([[0, 1, 3], [2, 3]])
        b = {(2, 3): 0.5}
        assert st.total_player_cost(b) == pytest.approx(st.social_cost() - 0.5)

    def test_with_player_path(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3)])
        st = game.state([[0, 1, 3]])
        st2 = st.with_player_path(0, [0, 2, 3])
        assert st2.usage == {(0, 2): 1, (2, 3): 1}
        assert st.usage == {(0, 1): 1, (1, 3): 1}  # original untouched

    def test_state_equality_and_hash(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3)])
        a = game.state([[0, 1, 3]])
        b = game.state([[0, 1, 3]])
        c = game.state([[0, 2, 3]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_shortest_path_state(self, diamond):
        game = NetworkDesignGame(diamond, [(0, 3), (2, 3)])
        st = game.shortest_path_state()
        assert st.node_paths[0] == (0, 1, 3)
        assert st.node_paths[1] == (2, 3)
