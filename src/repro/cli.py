"""Command-line entry point: ``repro-experiments``.

Usage::

    repro-experiments list
    repro-experiments run E3 [--seed 7]
    repro-experiments run all [--jobs 4]           # cached tolerant sweep
    repro-experiments solvers                      # the repro.api registry
    repro-experiments families                     # the repro.scenarios catalogue
    repro-experiments gen --n 10 --count 3 --out instances.json
    repro-experiments gen --family grid --game weighted --param demands=random \
        --n 16 --count 3 --out weighted-grids.json
    repro-experiments solve instances.json --solver sne-lp3 --json
    repro-experiments solve-batch instances.json --solver sne-lp3 \
        --solver theorem6 --workers 4 --json
    repro-experiments sweep --solver sne-lp3 --solver theorem6 \
        --model gnp --model hypercube --n 12 --n 16 --count 2 \
        --jobs 4 --json-out grid.json
    repro-experiments sweep --spec sweep.toml --jobs 8
    repro-experiments sweep --spec sweep.toml --listen 0.0.0.0:8351 \
        --json-out grid.json                           # distributed coordinator
    repro-experiments sweep-worker --connect HOST:8351 # ... on each worker host
    repro-experiments cache stats                      # result-cache occupancy
    repro-experiments cache prune --older-than 7d
    repro-experiments serve --port 8350 --workers 4    # persistent daemon
    repro-experiments --version

``sweep`` and ``run all`` execute through :mod:`repro.runtime`: jobs fan
out over worker processes and finished cells land in a content-addressed
result cache (``~/.cache/repro``; ``--cache-dir`` / ``REPRO_CACHE_DIR``
override, ``--no-cache`` disables), so re-runs only recompute what
changed and interrupted sweeps resume where they stopped.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional

from repro import api
from repro.experiments import (
    EXPERIMENTS,
    error_text,
    run_all_tolerant,
    run_experiment,
    sweep_summary,
)

_DESCRIPTIONS = {
    "E1": "Theorem 1: LP formulations (1)/(2)/(3) agree",
    "E2": "Theorem 6: constructive wgt(T)/e subsidies",
    "E3": "Theorem 11: cycle lower bound -> 1/e",
    "E4": "Theorem 21: all-or-nothing lower bound -> e/(2e-1)",
    "E5": "Lemma 4: Bypass gadget threshold",
    "E6": "Theorem 3: BIN PACKING reduction",
    "E7": "Theorem 5: INDEPENDENT SET reduction & PoS gap",
    "E8": "Theorem 12: 3SAT reduction (Corollary 20)",
    "E9": "PoS <= H_n potential descent",
    "E10": "Figure 4: virtual cost visualization data",
    "E11": "SND budget sweep (exact vs heuristic)",
    "A1": "Ablations: packing rule & decomposition",
    "A2": "Section 6 extensions: multicast/weighted/coalitions/combinatorial",
    "S1": "Scenario-family tour across all game families",
}


def _add_cache_flags(parser: argparse.ArgumentParser, prefix: str = "") -> None:
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"{prefix}recompute everything; neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"{prefix}result-cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation artefacts of 'Enforcing efficient "
            "equilibria in network design games via subsidies' (SPAA 2012)."
        ),
    )
    from repro import __version__
    from repro.runtime.spec import GENERATOR_MODELS, MODELS

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )

    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("solvers", help="list the repro.api solver registry")
    sub.add_parser("backends", help="list the repro.lp backend registry")
    sub.add_parser(
        "families",
        help="list the repro.scenarios instance families and the game families",
    )

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id (E1..E11, A1, A2) or 'all'")
    run_p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    run_p.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    run_p.add_argument(
        "--json-out",
        default=None,
        help=(
            "('run all' only) write a machine-readable sweep summary "
            "(per-experiment status + wall time) to this JSON file; "
            "defaults to <out>.json when --out is given"
        ),
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="('run all' only) worker processes (default 1 = in-process)",
    )
    run_p.add_argument(
        "--skip",
        action="append",
        default=[],
        metavar="ID",
        help="('run all' only) skip this experiment (repeatable); skips are "
        "reported distinctly from failures and do not fail the sweep",
    )
    run_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="('run all' only) per-experiment wall-clock budget in seconds",
    )
    _add_cache_flags(run_p, "('run all' only) ")

    gen_p = sub.add_parser(
        "gen", help="generate game instances (random models or named "
        "scenario families) as a JSON file"
    )
    gen_p.add_argument("--n", type=int, default=10, help="nodes per instance")
    gen_p.add_argument(
        "--model",
        choices=GENERATOR_MODELS,
        default=None,
        help="random generator family (default: random tree plus chords)",
    )
    gen_p.add_argument(
        "--family",
        choices=tuple(m for m in MODELS if m not in GENERATOR_MODELS),
        default=None,
        help="generate from a named scenario family instead of --model "
        "(see 'families'); topology/game knobs go through --param",
    )
    gen_p.add_argument(
        "--game",
        choices=("broadcast", "multicast", "general", "weighted", "directed"),
        default=None,
        help="(--family only) game family to wrap the scenario topology in "
        "(default broadcast)",
    )
    gen_p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="(--family only) scenario parameter, e.g. --param jitter=0.4 "
        "or --param demands=random (repeatable)",
    )
    gen_p.add_argument(
        "--chords", type=int, default=None, help="tree-chords: extra chords (default n // 2)"
    )
    gen_p.add_argument(
        "--chord-factor",
        type=float,
        default=None,
        help="tree-chords: chord weight multiplier (default 1.1)",
    )
    gen_p.add_argument(
        "--density",
        "--p",
        dest="density",
        type=float,
        default=None,
        help="gnp: edge probability p (default 0.3)",
    )
    gen_p.add_argument(
        "--radius",
        type=float,
        default=None,
        help="geometric: connection radius in the unit square (default 0.5)",
    )
    gen_p.add_argument(
        "--weight-low",
        type=float,
        default=None,
        help="tree-chords/gnp: uniform weight lower bound (default 0.5) "
        "(geometric weights are Euclidean distances)",
    )
    gen_p.add_argument(
        "--weight-high",
        type=float,
        default=None,
        help="tree-chords/gnp: uniform weight upper bound (default 2.0)",
    )
    gen_p.add_argument("--count", type=int, default=1, help="number of instances")
    gen_p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    gen_p.add_argument("--out", default=None, help="output file (default stdout)")

    solve_p = sub.add_parser("solve", help="solve one instance via the registry")
    solve_p.add_argument("instance", help="instance JSON file ('-' for stdin)")
    solve_p.add_argument(
        "--solver", required=True, help="registry solver name (see 'solvers')"
    )
    solve_p.add_argument("--budget", type=float, default=None, help="SND budget")
    solve_p.add_argument(
        "--backend",
        "--method",
        dest="method",
        default=None,
        help="LP backend from the repro.lp registry (see 'backends'); "
        "legacy spellings highs/simplex still work",
    )
    solve_p.add_argument(
        "--certify",
        action="store_true",
        help="(sne-lp1/lp2/lp3) re-derive the float verdict with the "
        "Fraction-exact backend and attach a rationally-verified "
        "certificate to the report metadata",
    )
    solve_p.add_argument(
        "--anytime",
        action="store_true",
        help="(approx-* solvers) record the improving (round, upper bound, "
        "lower bound) trajectory in the report metadata",
    )
    solve_p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="(approx-* solvers) stop early after this wall-clock budget and "
        "return the best certified iterate so far",
    )
    solve_p.add_argument(
        "--target-gap",
        type=float,
        default=None,
        metavar="FRACTION",
        help="(approx-* solvers) stop once the certified relative gap "
        "(upper - lower) / upper drops to this value",
    )
    solve_p.add_argument("--json", action="store_true", help="emit the report as JSON")
    solve_p.add_argument(
        "--canonical",
        action="store_true",
        help="(--json only) zero the wall clock so output is byte-stable "
        "across runs (the form the serve daemon returns)",
    )
    solve_p.add_argument("--out", default=None, help="also write output to this file")

    batch_p = sub.add_parser(
        "solve-batch", help="solve an instance sweep via solve_many"
    )
    batch_p.add_argument("instances", help="instances JSON file ('-' for stdin)")
    batch_p.add_argument(
        "--solver",
        action="append",
        required=True,
        help="registry solver name (repeatable)",
    )
    batch_p.add_argument(
        "--workers", type=int, default=1, help="thread-pool size (1 = serial)"
    )
    batch_p.add_argument("--budget", type=float, default=None, help="SND budget")
    batch_p.add_argument(
        "--backend",
        "--method",
        dest="method",
        default=None,
        help="LP backend from the repro.lp registry (see 'backends')",
    )
    batch_p.add_argument("--json", action="store_true", help="emit reports as JSON")
    batch_p.add_argument(
        "--canonical",
        action="store_true",
        help="(--json only) zero wall clocks so output is byte-stable "
        "across runs (the form the serve daemon returns)",
    )
    batch_p.add_argument("--out", default=None, help="also write output to this file")

    sweep_p = sub.add_parser(
        "sweep",
        help="run a (model x size x seed x solver) grid through the parallel "
        "runtime with the content-addressed result cache",
    )
    sweep_p.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="sweep spec as JSON or TOML (flags below override/extend it)",
    )
    sweep_p.add_argument(
        "--instances",
        default=None,
        metavar="FILE",
        help="solve an existing instance-set JSON file (from 'gen') instead "
        "of generating a grid",
    )
    sweep_p.add_argument(
        "--solver",
        action="append",
        default=[],
        help="registry solver name (repeatable)",
    )
    sweep_p.add_argument(
        "--model",
        action="append",
        default=[],
        choices=MODELS,
        help="instance model: a random generator or a scenario family "
        "(repeatable; default tree-chords)",
    )
    sweep_p.add_argument(
        "--n",
        action="append",
        default=[],
        type=int,
        metavar="N",
        help="instance size (repeatable; default 12)",
    )
    sweep_p.add_argument(
        "--count", type=int, default=None, help="instances per (model, size) cell"
    )
    sweep_p.add_argument("--seed", type=int, default=None, help="base RNG seed")
    sweep_p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="generator parameter, e.g. --param density=0.3 (repeatable)",
    )
    sweep_p.add_argument(
        "--opt",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="solver option applied to every job, e.g. --opt budget=2.5",
    )
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1 = in-process)",
    )
    sweep_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds",
    )
    sweep_p.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="run as a distributed coordinator: serve the job queue over "
        "HTTP here (port 0 = any free port) and wait for 'sweep-worker "
        "--connect' processes instead of solving locally",
    )
    sweep_p.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help="run as a distributed coordinator over a shared-filesystem "
        "spool directory (workers join with 'sweep-worker --spool DIR')",
    )
    sweep_p.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="(distributed) seconds a worker may go silent before its "
        "leased jobs are stolen (default: derived from --timeout)",
    )
    _add_cache_flags(sweep_p)
    sweep_p.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write the deterministic sweep result JSON here (byte-identical "
        "across --jobs values and cache states)",
    )
    sweep_p.add_argument(
        "--out", default=None, help="also write the text table to this file"
    )
    sweep_p.add_argument(
        "--quiet", action="store_true", help="no per-job progress on stderr"
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the persistent solver daemon (HTTP/JSON API, resident "
        "warm state, shared result cache)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_p.add_argument(
        "--port", type=int, default=8350, help="TCP port (default 8350; 0 = any free)"
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="max concurrent solves (default 4)",
    )
    serve_p.add_argument(
        "--queue",
        type=int,
        default=16,
        help="requests allowed to wait beyond --workers before 429s (default 16)",
    )
    serve_p.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="linger this long before solving so identical concurrent "
        "requests share one engine scan (default 0 = pure dedup)",
    )
    serve_p.add_argument(
        "--lru-size",
        type=int,
        default=128,
        help="interned live instances kept resident (default 128)",
    )
    _add_cache_flags(serve_p)
    serve_p.add_argument(
        "--quiet", action="store_true", help="no per-request access log on stderr"
    )

    worker_p = sub.add_parser(
        "sweep-worker",
        help="join a distributed sweep: lease jobs from a coordinator "
        "('sweep --listen' or 'sweep --spool'), solve them, report back",
    )
    worker_p.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="HTTP coordinator to lease jobs from (a 'sweep --listen' address)",
    )
    worker_p.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help="shared spool directory to claim jobs from (a 'sweep --spool' dir)",
    )
    worker_p.add_argument(
        "--id",
        dest="worker_id",
        default=None,
        help="worker name in coordinator stats (default: hostname-pid)",
    )
    worker_p.add_argument(
        "--poll",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sleep between polls when the queue is momentarily empty",
    )
    worker_p.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after this many jobs instead of running until the sweep ends",
    )
    worker_p.add_argument(
        "--ready-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long to wait for the coordinator to appear (default 30)",
    )
    _add_cache_flags(worker_p)
    worker_p.add_argument(
        "--quiet", action="store_true", help="no per-job progress on stderr"
    )

    cache_p = sub.add_parser(
        "cache",
        help="inspect or clean the content-addressed result cache",
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_stats_p = cache_sub.add_parser(
        "stats", help="entry count, bytes on disk, and age spread"
    )
    cache_stats_p.add_argument(
        "--json", action="store_true", help="emit the stats as JSON"
    )
    cache_clear_p = cache_sub.add_parser(
        "clear", help="delete every cached entry (current schema)"
    )
    cache_prune_p = cache_sub.add_parser(
        "prune", help="delete entries not refreshed within --older-than"
    )
    cache_prune_p.add_argument(
        "--older-than",
        required=True,
        metavar="AGE",
        help="age threshold: a number of seconds, or NUMBER followed by "
        "s/m/h/d/w (e.g. 36h, 7d)",
    )
    for cache_cmd_p in (cache_stats_p, cache_clear_p, cache_prune_p):
        cache_cmd_p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="result-cache directory "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
        )
    return parser


def _sigpipe_exit() -> int:
    """Conventional SIGPIPE exit, with the broken stdout silenced.

    Redirecting stdout to /dev/null before returning stops the
    interpreter's exit-time buffer flush from printing an
    "Exception ignored" traceback for the same broken pipe.
    """
    try:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except OSError:  # pragma: no cover - nothing left to silence
        pass
    return 141


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")


def _emit_json_streaming(payload: Any, out: Optional[str]) -> None:
    """Stream ``json.dumps(payload, indent=2)`` chunk by chunk to the sink.

    ``json.dump`` walks the encoder's chunk iterator straight into the
    file, so a large instance set costs its payload dicts — never payload
    *plus* the whole pretty-printed string.  With ``--out`` the file is
    the only sink (no multi-megabyte stdout echo); otherwise chunks
    stream to stdout.
    """
    if out:
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    else:
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")


def _read_payload(path: str) -> Any:
    if path == "-":
        return json.load(sys.stdin)
    with open(path) as fh:
        return json.load(fh)


def _instance_payloads(path: str) -> List[Any]:
    """Raw game payload dicts from a JSON file (instance-set or single)."""
    data = _read_payload(path)
    if isinstance(data, dict) and data.get("kind") == "instance-set":
        data = data["instances"]
    if isinstance(data, dict):
        data = [data]
    return list(data)


def _load_instances(path: str) -> List[Any]:
    """Read one game or a whole instance set from a JSON file."""
    return [api.serialize.game_from_json(entry) for entry in _instance_payloads(path)]


def _solver_opts(args: argparse.Namespace) -> dict:
    opts: dict = {}
    if args.budget is not None:
        opts["budget"] = args.budget
    if args.method is not None:
        opts["method"] = args.method
    # Certify/anytime knobs exist only on `solve` (batch sweeps stay lean).
    if getattr(args, "certify", False):
        opts["certify"] = True
    if getattr(args, "anytime", False):
        opts["anytime"] = True
    if getattr(args, "deadline", None) is not None:
        opts["deadline"] = args.deadline
    if getattr(args, "target_gap", None) is not None:
        opts["target_gap"] = args.target_gap
    return opts


def _cmd_solvers() -> int:
    for spec in api.list_solvers():
        flags = []
        flags.append("exact" if spec.exact else "heuristic")
        if spec.broadcast_only:
            flags.append("broadcast-only")
        if spec.requires_tree_state:
            flags.append("tree-state")
        alias = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(
            f"{spec.name:18s} {spec.problem:8s} [{', '.join(flags)}] "
            f"{spec.description}{alias}"
        )
    return 0


def _cmd_backends() -> int:
    from repro import lp

    for spec in lp.list_backends():
        caps = [flag for flag, on in spec.capabilities().items() if on]
        avail = "" if spec.available else f" (unavailable: needs {spec.requires})"
        alias = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(
            f"{spec.name:14s} [{', '.join(caps) or 'cold'}] "
            f"{spec.description}{alias}{avail}"
        )
    return 0


def _cmd_families() -> int:
    from repro.games.base import describe_families
    from repro.scenarios import SCENARIOS, scenario_names

    print("scenario families (repro-experiments gen --family NAME):")
    for name in scenario_names():
        fam = SCENARIOS[name]
        knobs = ", ".join(f"{k}={v!r}" for k, v in fam.params.items()) or "-"
        tag = "seeded" if fam.stochastic else "deterministic"
        print(f"  {name:18s} [{tag}] {fam.description} (params: {knobs})")
    print(
        "  shared game knobs: game=broadcast|multicast|general|weighted|"
        "directed, terminals=all|half, demands=unit|random, "
        "orientation=symmetric|oneway-chords, pairs=broadcast|random"
    )
    print("\ngame families:")
    for row in describe_families():
        print(f"  {row['family']:18s} {row['description']}")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.runtime import generate_instance
    from repro.utils.rng import child_seeds

    generator_flags = {
        "--model": args.model,
        "--chords": args.chords,
        "--chord-factor": args.chord_factor,
        "--density": args.density,
        "--radius": args.radius,
        "--weight-low": args.weight_low,
        "--weight-high": args.weight_high,
    }
    if args.family is not None:
        used = [name for name, value in generator_flags.items() if value is not None]
        if used:
            raise ValueError(
                f"--family selects a scenario; drop generator flag(s) "
                f"{', '.join(used)} (scenario knobs go through --param)"
            )
        model = args.family
        params: dict = _parse_kv(args.param, "--param")
        if args.game is not None:
            params["game"] = args.game
    elif args.param or args.game is not None:
        raise ValueError("--param/--game apply to scenario families; add --family NAME")
    else:
        model = args.model or "tree-chords"
        weight_low = 0.5 if args.weight_low is None else args.weight_low
        weight_high = 2.0 if args.weight_high is None else args.weight_high
        if model == "gnp":
            params = {
                "density": 0.3 if args.density is None else args.density,
                "weight_low": weight_low,
                "weight_high": weight_high,
            }
        elif model == "geometric":
            params = {"radius": 0.5 if args.radius is None else args.radius}
        else:
            params = {
                "chords": args.chords if args.chords is not None else args.n // 2,
                "chord_factor": 1.1 if args.chord_factor is None else args.chord_factor,
                "weight_low": weight_low,
                "weight_high": weight_high,
            }
    instances = []
    # One independent child stream per instance (SeedSequence spawning), so
    # sweeps with neighbouring base seeds never share instances.  The same
    # construction path backs sweep-grid expansion (repro.runtime.spec), so
    # generated files and grid cells agree cell for cell.
    for seed in child_seeds(args.seed, args.count):
        game = generate_instance(model, args.n, seed, **params)
        instances.append(api.serialize.game_to_json(game))
    payload = {"kind": "instance-set", "instances": instances}
    _emit_json_streaming(payload, args.out)
    return 0


def _report_json(report: Any, canonical: bool) -> Any:
    if canonical:
        return api.serialize.canonical_report_json(report)
    return api.serialize.report_to_json(report)


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.canonical and not args.json:
        raise ValueError("--canonical only applies to --json output")
    instances = _load_instances(args.instance)
    if len(instances) != 1:
        print(
            f"'solve' expects exactly one instance, got {len(instances)} "
            "(use solve-batch for sweeps)",
            file=sys.stderr,
        )
        return 2
    report = api.solve(instances[0], solver=args.solver, **_solver_opts(args))
    if args.json:
        payload = _report_json(report, args.canonical)
        if not args.canonical:
            # Peak RSS is a property of this process run, not of the
            # instance — canonical output (the byte-stable form the serve
            # daemon mirrors) must not carry it.
            from repro.utils.resources import peak_rss_bytes

            payload["metadata"] = {
                **payload.get("metadata", {}),
                "peak_rss_bytes": peak_rss_bytes(),
            }
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        _emit(report.summary(), args.out)
    return 0 if report.feasible else 1


def _cmd_solve_batch(args: argparse.Namespace) -> int:
    if args.canonical and not args.json:
        raise ValueError("--canonical only applies to --json output")
    instances = _load_instances(args.instances)
    grid = api.solve_many(
        instances, args.solver, workers=args.workers, opts=_solver_opts(args)
    )
    if args.json:
        payload = [
            [_report_json(report, args.canonical) for report in row] for row in grid
        ]
        _emit(json.dumps(payload, indent=2), args.out)
    else:
        lines = []
        for i, row in enumerate(grid):
            for report in row:
                lines.append(f"instance {i}: {report.summary()}")
        _emit("\n".join(lines), args.out)
    return 0 if all(r.feasible for row in grid for r in row) else 1


def _cache_from_args(args: argparse.Namespace):
    """The cache object selected by ``--no-cache`` / ``--cache-dir``."""
    from repro.runtime import coerce_cache

    if getattr(args, "no_cache", False):
        return coerce_cache(False)
    return coerce_cache(getattr(args, "cache_dir", None))


def _parse_kv(pairs: List[str], flag: str) -> dict:
    """Parse repeatable ``KEY=VALUE`` flags; values are JSON when possible."""
    out: dict = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"{flag} expects KEY=VALUE, got {pair!r}")
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw  # bare strings, e.g. --opt method=simplex
    return out


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a parameter grid through the parallel, cached sweep runtime."""
    from repro.runtime import SweepRunner, SweepSpec, read_spec_file

    # Flags refine the spec file (overlaid onto the raw mapping before
    # validation, so e.g. a solvers-less grid file plus --solver works):
    # repeatable flags replace, scalars override only when given.
    data: dict = read_spec_file(args.spec) if args.spec else {}
    if args.solver:
        data["solvers"] = list(args.solver)
    if args.model:
        data["models"] = list(args.model)
    if args.n:
        data["sizes"] = list(args.n)
    if args.count is not None:
        data["count"] = args.count
    if args.seed is not None:
        data["seed"] = args.seed
    if args.param:
        data["params"] = {**data.get("params", {}), **_parse_kv(args.param, "--param")}
    if args.opt:
        data["opts"] = {**data.get("opts", {}), **_parse_kv(args.opt, "--opt")}
    if "solvers" not in data:
        raise ValueError("sweep needs --solver (repeatable) or a --spec FILE listing solvers")
    spec = SweepSpec.from_mapping(data)
    if args.instances:
        if args.model or args.n or args.count is not None or args.seed is not None or args.param:
            raise ValueError(
                "--instances replaces the generator grid; drop "
                "--model/--n/--count/--seed/--param"
            )
        spec.instances = _instance_payloads(args.instances)

    jobs = spec.expand()

    def progress(outcome, done, total):
        if not args.quiet:
            mark = " (cached)" if outcome.cached else ""
            print(
                f"[{done}/{total}] {outcome.job.label}: {outcome.status}{mark}",
                file=sys.stderr,
            )

    if args.listen or args.spool:
        if args.jobs != 1:
            raise ValueError(
                "--jobs selects the single-host pool; with --listen/--spool "
                "parallelism comes from sweep-worker processes"
            )
        return _run_sweep_coordinator(args, jobs, progress)
    if args.lease_timeout is not None:
        raise ValueError("--lease-timeout only applies with --listen/--spool")

    runner = SweepRunner(
        jobs=args.jobs,
        cache=_cache_from_args(args),
        timeout=args.timeout,
        progress=progress,
    )
    result = runner.run(jobs)

    lines = []
    for o in result:
        if o.ok:
            budget = o.report["budget_used"]
            cost = o.report["target_cost"]
            detail = f"budget {budget:.6g} on wgt {cost:.6g}"
            if o.cached:
                detail += " [cached]"
            else:
                detail += f" ({o.elapsed_seconds * 1e3:.1f} ms)"
        else:
            detail = o.error or o.status
        lines.append(f"{o.job.label:40s} {o.status:8s} {detail}")
    lines += ["", result.summary_text()]
    _emit("\n".join(lines), args.out)
    if args.json_out:
        # Streams one job record at a time; bytes identical to dumping
        # result.to_json() with indent=2/sort_keys (regression-tested).
        result.write_json(args.json_out)
    return 0 if result.ok else 1


def _parse_hostport(value: str, flag: str) -> tuple:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"{flag} expects HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


def _parse_age(text: str) -> float:
    """``--older-than`` values: plain seconds or NUMBER + s/m/h/d/w."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    raw = text.strip()
    scale = 1.0
    if raw and raw[-1].lower() in units:
        scale = units[raw[-1].lower()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"--older-than expects NUMBER[s|m|h|d|w] (e.g. 3600, 36h, 7d), "
            f"got {text!r}"
        ) from None
    if value < 0:
        raise ValueError(f"--older-than must be >= 0, got {text!r}")
    return value * scale


def _run_sweep_coordinator(args: argparse.Namespace, jobs, progress) -> int:
    """The distributed branch of ``sweep``: serve the grid to workers."""
    from repro.runtime.distributed import SweepCoordinator

    coordinator = SweepCoordinator(
        jobs,
        cache=_cache_from_args(args),
        timeout=args.timeout,
        lease_timeout=args.lease_timeout,
        json_out=args.json_out,
        spool=args.spool,
        progress=progress,
    )
    if args.listen:
        host, port = _parse_hostport(args.listen, "--listen")
        bound_host, bound_port = coordinator.serve(host, port)
        print(
            f"coordinator listening on {bound_host}:{bound_port} "
            f"(join with: sweep-worker --connect {bound_host}:{bound_port})",
            file=sys.stderr,
        )
    if args.spool:
        print(
            f"coordinator spooling to {args.spool} "
            f"(join with: sweep-worker --spool {args.spool})",
            file=sys.stderr,
        )
    result = coordinator.run()
    _emit(result.summary_text(), args.out)
    return 0 if result.ok else 1


def _cmd_sweep_worker(args: argparse.Namespace) -> int:
    """One worker process of a distributed sweep."""
    from repro.runtime.distributed import IDLE_POLL_SECONDS, run_worker

    if (args.connect is None) == (args.spool is None):
        raise ValueError(
            "sweep-worker needs exactly one of --connect HOST:PORT or --spool DIR"
        )
    connect = (
        _parse_hostport(args.connect, "--connect") if args.connect else None
    )
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    summary = run_worker(
        connect=connect,
        spool=args.spool,
        worker_id=args.worker_id,
        cache=_cache_from_args(args),
        poll=args.poll if args.poll is not None else IDLE_POLL_SECONDS,
        max_jobs=args.max_jobs,
        ready_timeout=args.ready_timeout,
        log=log,
    )
    print(summary.summary_text())
    return 0


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - loop always returns


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clean the content-addressed result cache."""
    import time

    from repro.runtime import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"cache root: {stats['root']} (schema v{stats['schema']})")
        print(f"entries:    {stats['entries']}")
        print(f"disk:       {_human_bytes(stats['total_bytes'])}")
        if stats["entries"]:
            now = time.time()
            oldest = now - stats["oldest_mtime"]
            newest = now - stats["newest_mtime"]
            print(f"ages:       newest {newest:.0f}s, oldest {oldest:.0f}s")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0
    # prune
    removed = cache.prune(_parse_age(args.older_than))
    print(
        f"pruned {removed} entr{'y' if removed == 1 else 'ies'} older than "
        f"{args.older_than} from {cache.root}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the solver daemon in the foreground until Ctrl-C."""
    from repro.serve import ServeConfig, serve_forever

    config = ServeConfig(
        workers=args.workers,
        queue=args.queue,
        batch_window=args.batch_window,
        lru_size=args.lru_size,
        cache=_cache_from_args(args),
    )
    serve_forever(config, host=args.host, port=args.port, quiet=args.quiet)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    """Tolerant sweep: report per-experiment timing, survive failures."""
    items = run_all_tolerant(
        seed=args.seed,
        jobs=args.jobs,
        cache=_cache_from_args(args),
        timeout=args.timeout,
        skip=args.skip,
    )
    chunks = []
    for item in items:
        if item.skipped:
            chunks.append(f"[{item.experiment_id}] skipped (--skip)")
        elif item.ok:
            assert item.result is not None
            chunks.append(item.result.to_text())
        else:
            chunks.append(
                f"[{item.experiment_id}] FAILED after {item.elapsed_seconds:.2f}s: "
                f"{error_text(item.error)}"
            )
    summary = ["", "== sweep summary =="]
    for item in items:
        label = {"failed": "FAILED"}.get(item.status, item.status)
        summary.append(
            f"{item.experiment_id:4s} {label:8s} {item.elapsed_seconds:8.2f}s"
        )
    failures = [i for i in items if i.status == "failed"]
    skipped = [i for i in items if i.skipped]
    hits = [i for i in items if i.cached]
    ran = [i for i in items if not i.skipped]
    tail = (
        f"{len(ran) - len(failures)}/{len(ran)} experiments passed "
        f"({len(hits)} cache hits"
    )
    if skipped:
        tail += f", {len(skipped)} skipped"
    tail += f"), total {sum(i.elapsed_seconds for i in ran):.2f}s"
    summary.append(tail)
    _emit("\n\n".join(chunks) + "\n" + "\n".join(summary), args.out)
    json_out = args.json_out
    if json_out is None and args.out:
        json_out = args.out + ".json"
    if json_out:
        with open(json_out, "w") as fh:
            json.dump(sweep_summary(items, seed=args.seed), fh, indent=2)
            fh.write("\n")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("list", "solvers", "backends", "families"):
        try:
            if args.command == "list":
                for key in EXPERIMENTS:
                    print(f"{key:4s} {_DESCRIPTIONS.get(key, '')}")
                return 0
            if args.command == "solvers":
                return _cmd_solvers()
            if args.command == "backends":
                return _cmd_backends()
            return _cmd_families()
        except BrokenPipeError:
            # Downstream consumer (e.g. `| head`) closed stdout: not a user
            # error, no message.
            return _sigpipe_exit()
    if args.command in (
        "gen", "solve", "solve-batch", "sweep", "sweep-worker", "cache", "serve"
    ):
        handler = {
            "gen": _cmd_gen,
            "solve": _cmd_solve,
            "solve-batch": _cmd_solve_batch,
            "sweep": _cmd_sweep,
            "sweep-worker": _cmd_sweep_worker,
            "cache": _cmd_cache,
            "serve": _cmd_serve,
        }[args.command]
        try:
            return handler(args)
        except BrokenPipeError:
            # Downstream consumer (e.g. `| head`) closed stdout: not a user
            # error, no message.
            return _sigpipe_exit()
        except json.JSONDecodeError as exc:
            print(f"error: invalid JSON in instance file: {exc}", file=sys.stderr)
            return 2
        except (api.UnknownSolverError, ValueError, TypeError, OSError) as exc:
            # User errors (bad name, bad file, bad option combination) get a
            # clean message instead of a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyError as exc:
            # Plain KeyError (UnknownSolverError is handled above): a payload
            # with the right kind but missing fields.
            print(
                f"error: malformed instance payload: missing field {exc.args[0]!r}",
                file=sys.stderr,
            )
            return 2

    # command == "run"
    try:
        if args.experiment.lower() == "all":
            return _cmd_run_all(args)
        result = run_experiment(args.experiment, seed=args.seed)
        _emit(result.to_text(), args.out)
        return 0
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed stdout: not a user
        # error, no message.
        return _sigpipe_exit()
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
