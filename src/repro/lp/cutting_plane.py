"""Constraint generation ("cutting planes") for exponential-size LPs.

Theorem 1 of the paper solves SNE through an LP with one constraint per
player-deviation *path* — exponentially many — and notes it is solvable in
polynomial time via the ellipsoid method given a separation oracle.  The
standard practical counterpart is constraint generation: solve a relaxation
with few rows, ask the oracle for violated constraints at the optimum, add
them and repeat.  The oracle here is the same one the paper describes
(a shortest-path computation per player).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.lp.backends import solve_lp
from repro.lp.incremental import IncrementalLP
from repro.lp.problem import LinearProgram, LPResult, LPStatus

#: A cut is ``(coefficient row, rhs)`` meaning ``row . x <= rhs``.
Cut = Tuple[np.ndarray, float]

#: Oracle: given the current LP optimum, return violated cuts (empty = done).
SeparationOracle = Callable[[np.ndarray], Sequence[Cut]]


@dataclass
class CuttingPlaneResult:
    """Final LP result plus convergence bookkeeping."""

    result: LPResult
    rounds: int
    cuts_added: int
    converged: bool

    @property
    def ok(self) -> bool:
        return self.converged and self.result.ok


def solve_with_cutting_planes(
    problem: Union[LinearProgram, IncrementalLP],
    oracle: SeparationOracle,
    method: str = "highs",
    max_rounds: int = 200,
) -> CuttingPlaneResult:
    """Iteratively solve ``problem``, adding oracle cuts until none violate.

    ``method`` is any :mod:`repro.lp.backends` registry name or alias; the
    relaxation re-solves each round go through that backend uniformly.

    The ``problem`` object is mutated (rows accumulate), which lets callers
    inspect the final working LP — the ``--certify`` path exact-solves
    exactly this accumulated relaxation.  Raises no exception on
    non-convergence; check :attr:`CuttingPlaneResult.converged`.

    An :class:`~repro.lp.incremental.IncrementalLP` problem takes the fast
    path: cut rows append in O(nnz) and each round's re-solve warm-starts
    from the previous one (resumed simplex basis / sparse HiGHS re-solve)
    instead of rebuilding dense matrices from scratch.  The admissible cuts
    and the returned result are the same either way — only the solve path
    changes.
    """
    incremental = isinstance(problem, IncrementalLP)
    cuts_added = 0
    last: Optional[LPResult] = None
    for round_idx in range(1, max_rounds + 1):
        if incremental:
            last = problem.solve(method=method)
        else:
            last = solve_lp(problem, method=method)
        if last.status is not LPStatus.OPTIMAL:
            return CuttingPlaneResult(last, round_idx, cuts_added, converged=False)
        assert last.x is not None
        violated: List[Cut] = list(oracle(last.x))
        if not violated:
            return CuttingPlaneResult(last, round_idx, cuts_added, converged=True)
        for row, rhs in violated:
            problem.add_constraint(row, rhs)
            cuts_added += 1
    assert last is not None
    return CuttingPlaneResult(last, max_rounds, cuts_added, converged=False)
