"""Shared benchmark configuration.

Each ``bench_*.py`` regenerates one paper artefact (tables/figures are the
theorem-level quantities; see DESIGN.md's experiment index) and asserts its
shape while pytest-benchmark measures the cost of the regeneration kernel.
"""
