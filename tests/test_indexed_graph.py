"""Property tests: the indexed graph core agrees with the legacy layers.

The CSR-backed :class:`~repro.graphs.core.IndexedGraph` replaced the
dict-of-dicts hot paths; these tests pin the equivalences the refactor
relies on:

* indexed Dijkstra == the legacy hashable-keyed loop (still reachable via
  ``weight_fn``) on random weighted graphs;
* unit-weight Dijkstra == plain BFS hop counts;
* the indexed Kruskal returns the *identical* edge list the dict-based
  implementation picked (same deterministic tie-breaks), including on
  graphs with mixed hashable node labels;
* snapshot caching keyed by the graph's mutation counter.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, dijkstra, kruskal_mst, prim_mst
from repro.graphs.core import IndexedGraph, IntUnionFind, bfs_hops_indexed, dijkstra_indexed
from repro.graphs.generators import grid_graph, random_connected_gnp
from repro.graphs.graph import _sort_key, canonical_edge
from repro.graphs.unionfind import UnionFind


def _legacy_dijkstra(graph, source, target=None):
    """Force the dict-based Dijkstra via the ``weight_fn`` code path."""
    return dijkstra(graph, source, weight_fn=graph.weight, target=target)


def _legacy_kruskal(graph):
    """The pre-refactor Kruskal: sorted edges + hashable union-find."""
    uf = UnionFind(graph.nodes)
    tree = []
    order = sorted(graph.edges(), key=lambda t: (t[2], _sort_key(t[0]), _sort_key(t[1])))
    for u, v, _w in order:
        if uf.union(u, v):
            tree.append(canonical_edge(u, v))
    return tree


def _mixed_label_graph():
    """Heterogeneous hashable labels (ints, strings, tuples), as the
    hardness gadgets use."""
    g = Graph.from_edges(
        [
            (0, "a", 1.0),
            ("a", (1, 2), 2.0),
            ((1, 2), 1, 1.5),
            (1, 0, 4.0),
            ("a", ("x",), 1.0),
            (("x",), 1, 0.5),
            (0, (1, 2), 2.5),
            ("b", "a", 1.0),
            ("b", 1, 1.0),
        ]
    )
    return g


class TestIndexedGraphStructure:
    def test_round_trip(self):
        g = _mixed_label_graph()
        ig = g.to_indexed()
        h = ig.to_graph()
        assert h.node_set() == g.node_set()
        assert h.edge_set() == g.edge_set()
        for u, v, w in g.edges():
            assert h.weight(u, v) == w

    def test_label_id_bijection(self):
        g = _mixed_label_graph()
        ig = g.to_indexed()
        for label in g.nodes:
            assert ig.label_of(ig.id_of(label)) == label
        assert sorted(ig.labels, key=_sort_key) == ig.labels

    def test_edge_ids_cover_all_edges(self):
        g = _mixed_label_graph()
        ig = g.to_indexed()
        assert ig.num_edges == g.num_edges
        for u, v, w in g.edges():
            eid = ig.edge_id(u, v)
            assert ig.edge_of(eid) == canonical_edge(u, v)
            assert ig.edge_weights[eid] == w

    def test_csr_shape(self):
        g = random_connected_gnp(12, 0.4, seed=1)
        ig = g.to_indexed()
        assert ig.indptr[0] == 0
        assert ig.indptr[-1] == 2 * ig.num_edges
        for u in g.nodes:
            assert ig.degree(ig.id_of(u)) == g.degree(u)

    def test_snapshot_cached_until_mutation(self):
        g = random_connected_gnp(8, 0.4, seed=2)
        ig1 = g.to_indexed()
        assert g.to_indexed() is ig1
        g.add_edge(0, 99, 1.0)
        ig2 = g.to_indexed()
        assert ig2 is not ig1
        assert ig2.num_nodes == ig1.num_nodes + 1

    def test_path_edge_ids(self):
        g = grid_graph(3, 3)
        ig = g.to_indexed()
        eids = ig.path_edge_ids([0, 1, 2, 5])
        assert [ig.edge_of(e) for e in eids] == [(0, 1), (1, 2), (2, 5)]


class TestIntUnionFind:
    def test_matches_hashable_unionfind(self):
        g = random_connected_gnp(20, 0.2, seed=3)
        ig = g.to_indexed()
        a = IntUnionFind(ig.num_nodes)
        b = UnionFind(range(ig.num_nodes))
        for u, v in zip(ig.edge_u.tolist(), ig.edge_v.tolist()):
            assert a.union(u, v) == b.union(u, v)
            assert a.n_components == b.n_components


@settings(max_examples=40, deadline=None)
@given(st.integers(4, 16), st.floats(0.2, 0.9), st.integers(0, 10_000))
def test_indexed_dijkstra_matches_legacy(n, p, seed):
    g = random_connected_gnp(n, p, seed=seed)
    legacy_dist, _ = _legacy_dijkstra(g, 0)
    dist, _ = dijkstra(g, 0)  # stored-weight path -> indexed core
    assert set(dist) == set(legacy_dist)
    for node, d in legacy_dist.items():
        assert dist[node] == pytest.approx(d)


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 14), st.floats(0.2, 0.8), st.integers(0, 10_000))
def test_unit_weight_dijkstra_is_bfs(n, p, seed):
    g = random_connected_gnp(n, p, seed=seed, weight_low=1.0, weight_high=1.0)
    ig = g.to_indexed()
    src = ig.id_of(0)
    dist, _, _ = dijkstra_indexed(ig, src)
    hops = bfs_hops_indexed(ig, src)
    for i, h in enumerate(hops):
        assert h >= 0
        assert dist[i] == pytest.approx(float(h))


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 14), st.floats(0.2, 0.9), st.integers(0, 10_000))
def test_indexed_kruskal_identical_to_legacy(n, p, seed):
    g = random_connected_gnp(n, p, seed=seed)
    assert kruskal_mst(g) == _legacy_kruskal(g)


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 12), st.integers(0, 10_000))
def test_kruskal_ties_identical_to_legacy(n, seed):
    # Unit weights: every spanning tree is minimum, so the deterministic
    # tie-break order is the entire contract.  Labels are normalized to
    # plain ints: the generator mixes `int` and `np.int64` instances of the
    # same node, under which the legacy (type-name, repr) order was already
    # instance-dependent and therefore not a contract worth pinning.
    g = random_connected_gnp(n, 0.5, seed=seed, weight_low=1.0, weight_high=1.0)
    h = Graph.from_edges((int(u), int(v), w) for u, v, w in g.edges())
    assert kruskal_mst(h) == _legacy_kruskal(h)


class TestMixedLabels:
    def test_dijkstra_mixed_labels(self):
        g = _mixed_label_graph()
        for source in g.nodes:
            legacy_dist, _ = _legacy_dijkstra(g, source)
            dist, parent = dijkstra(g, source)
            assert set(dist) == set(legacy_dist)
            for node, d in legacy_dist.items():
                assert dist[node] == pytest.approx(d)
            # Parent chains reconstruct into paths of matching length.
            for node in dist:
                if node == source:
                    continue
                cost, x = 0.0, node
                while x != source:
                    cost += g.weight(x, parent[x])
                    x = parent[x]
                assert cost == pytest.approx(dist[node])

    def test_kruskal_mixed_labels(self):
        g = _mixed_label_graph()
        tree = kruskal_mst(g)
        assert tree == _legacy_kruskal(g)
        assert g.subset_weight(tree) == pytest.approx(g.subset_weight(prim_mst(g)))

    def test_bounded_search_prunes_but_stays_exact_below_bound(self):
        g = _mixed_label_graph()
        ig = g.to_indexed()
        src = ig.id_of(0)
        full, _, _ = dijkstra_indexed(ig, src)
        bound = 2.0
        bounded, _, _ = dijkstra_indexed(ig, src, bound=bound)
        for i in range(ig.num_nodes):
            if full[i] < bound:
                assert bounded[i] == full[i]
            else:
                assert bounded[i] == math.inf


def test_negative_cost_rejected_with_validate():
    import numpy as np

    g = Graph.from_edges([(0, 1, 1.0)])
    ig = g.to_indexed()
    with pytest.raises(ValueError):
        dijkstra_indexed(ig, 0, edge_costs=np.array([-1.0]), validate=True)


def test_empty_and_singleton_graphs():
    g = Graph()
    assert kruskal_mst(g) == []
    g.add_node("solo")
    ig = g.to_indexed()
    assert ig.num_nodes == 1 and ig.num_edges == 0
    dist, pred, _ = dijkstra_indexed(ig, 0)
    assert dist == [0.0] and pred == [-1]
