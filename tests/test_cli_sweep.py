"""CLI front ends of the sweep runtime: ``sweep`` and cached ``run all``."""

import json

import pytest

from repro.cli import main


def run_sweep(tmp_path, *extra, jobs="1", json_name="out.json"):
    json_out = tmp_path / json_name
    code = main(
        [
            "sweep",
            "--solver", "sne-lp3",
            "--solver", "theorem6",
            "--model", "tree-chords",
            "--n", "8",
            "--count", "2",
            "--seed", "0",
            "--jobs", jobs,
            "--cache-dir", str(tmp_path / "cache"),
            "--json-out", str(json_out),
            "--quiet",
            *extra,
        ]
    )
    return code, json_out.read_bytes()


class TestSweepCommand:
    def test_cold_warm_and_parallel_byte_identical(self, tmp_path, capsys):
        code1, cold = run_sweep(tmp_path, json_name="cold.json")
        assert code1 == 0
        assert "4 ok" in capsys.readouterr().out
        code2, warm = run_sweep(tmp_path, json_name="warm.json")
        assert code2 == 0
        assert "(4 cached)" in capsys.readouterr().out
        code3, parallel = run_sweep(
            tmp_path, "--no-cache", jobs="3", json_name="par.json"
        )
        assert code3 == 0
        assert cold == warm == parallel
        payload = json.loads(cold)
        assert payload["kind"] == "sweep-result"
        assert [j["status"] for j in payload["jobs"]] == ["ok"] * 4
        assert all("wall_clock_seconds" not in j["report"] for j in payload["jobs"])

    def test_json_out_carries_solver_profiles(self, tmp_path, capsys):
        """Schema 3: LP-backed solvers surface their work counters per job."""
        json_out = tmp_path / "prof.json"
        code = main(
            [
                "sweep",
                "--solver", "sne-cutting-plane",
                "--solver", "theorem6",
                "--model", "tree-chords",
                "--n", "8",
                "--count", "1",
                "--seed", "0",
                "--no-cache",
                "--json-out", str(json_out),
                "--quiet",
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(json_out.read_bytes())
        assert payload["schema"] == 3
        by_solver = {j["solver"]: j for j in payload["jobs"]}
        profile = by_solver["sne-cutting-plane"]["profile"]
        assert set(profile) == {
            "dijkstra_calls",
            "players_batched",
            "cut_rounds",
            "warm_start_hits",
        }
        assert profile["cut_rounds"] >= 1
        # lifted out of (not duplicated into) the embedded report copy
        assert "profile" not in by_solver["sne-cutting-plane"]["report"]["metadata"]
        # solvers without counters record an explicit null
        assert by_solver["theorem6"]["profile"] is None

    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps({"solvers": ["theorem6"], "sizes": [8], "count": 1, "seed": 1})
        )
        code = main(
            ["sweep", "--spec", str(spec), "--no-cache", "--quiet"]
        )
        assert code == 0
        assert "1 job" in capsys.readouterr().out

    def test_solverless_spec_file_plus_solver_flag(self, tmp_path, capsys):
        # a grid-only spec shared across solver runs is a valid combination
        spec = tmp_path / "grid.json"
        spec.write_text(json.dumps({"sizes": [8], "count": 1, "seed": 1}))
        code = main(
            ["sweep", "--spec", str(spec), "--solver", "theorem6",
             "--no-cache", "--quiet"]
        )
        assert code == 0
        assert "1 job" in capsys.readouterr().out

    def test_instances_file(self, tmp_path, capsys):
        inst = tmp_path / "instances.json"
        assert main(
            ["gen", "--n", "8", "--count", "2", "--seed", "3", "--out", str(inst)]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "sweep", "--instances", str(inst), "--solver", "theorem6",
                "--no-cache", "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inst0 x theorem6" in out and "inst1 x theorem6" in out

    def test_solver_required_without_spec(self, capsys):
        assert main(["sweep", "--quiet"]) == 2
        assert "sweep needs --solver" in capsys.readouterr().err

    def test_unknown_solver_clean_error(self, capsys):
        assert main(["sweep", "--solver", "nope", "--quiet"]) == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_bad_param_syntax(self, capsys):
        assert main(
            ["sweep", "--solver", "theorem6", "--param", "density", "--quiet"]
        ) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_progress_on_stderr(self, tmp_path, capsys):
        code = main(
            [
                "sweep", "--solver", "theorem6", "--n", "8",
                "--cache-dir", str(tmp_path / "c"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "[1/1]" in err and "theorem6" in err


class TestRunAllCacheReporting:
    @pytest.fixture()
    def skip_flags(self):
        # keep only the fastest experiments so the test stays quick
        keep = {"E5", "E10"}
        from repro.experiments import EXPERIMENTS

        flags = []
        for key in EXPERIMENTS:
            if key not in keep:
                flags += ["--skip", key]
        return flags

    def test_summary_counts_hits_and_skips(self, tmp_path, capsys, skip_flags):
        n_skipped = len(skip_flags) // 2
        args = ["run", "all", "--cache-dir", str(tmp_path / "cache"), *skip_flags]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "skipped" in cold
        assert f"(0 cache hits, {n_skipped} skipped)" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert f"(2 cache hits, {n_skipped} skipped)" in warm
        assert "E5   cached" in warm

    def test_json_summary_statuses(self, tmp_path, capsys, skip_flags):
        json_out = tmp_path / "summary.json"
        args = [
            "run", "all", "--cache-dir", str(tmp_path / "cache"),
            "--json-out", str(json_out), *skip_flags,
        ]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        payload = json.loads(json_out.read_text())
        assert payload["passed"] == 2
        assert payload["failed"] == 0
        assert payload["skipped"] == len(skip_flags) // 2
        assert payload["cache_hits"] == 2
        statuses = {e["id"]: e["status"] for e in payload["experiments"]}
        assert statuses["E5"] == "cached"
        assert statuses["E1"] == "skipped"
        # skipped experiments are not failures and keep exit code 0
        assert all(e["error"] is None for e in payload["experiments"])
