"""Network design games (Section 2 of the paper).

* :class:`NetworkDesignGame` — arbitrary source/destination pairs, states are
  per-player paths with fair (Shapley) cost sharing.
* :class:`BroadcastGame` — one player per non-root node (optionally with
  co-located player *multiplicities*), states are spanning trees.
* Equilibrium checking via best-response shortest-path oracles, Rosenthal's
  potential, best-response dynamics, and exact price of stability/anarchy.
"""

from repro.games.game import NetworkDesignGame, Player, State
from repro.games.broadcast import BroadcastGame, TreeState
from repro.games.equilibrium import (
    Deviation,
    EquilibriumReport,
    best_response,
    check_equilibrium,
    check_equilibrium_legacy,
)
from repro.games.engine import BestResponseEngine, EngineProfile
from repro.games.potential import rosenthal_potential, potential_of_tree
from repro.games.dynamics import BRDResult, best_response_dynamics
from repro.games.efficiency import (
    EfficiencyReport,
    equilibrium_spanning_trees,
    price_of_anarchy,
    price_of_stability,
)
from repro.games.multicast import MulticastGame
from repro.games.weighted import (
    WeightedNetworkDesignGame,
    WeightedState,
    check_weighted_equilibrium,
    solve_weighted_sne,
)
from repro.games.coalitions import (
    CoalitionDeviation,
    StrongEquilibriumReport,
    check_strong_equilibrium,
)
from repro.games.approx import (
    equilibrium_stretch,
    is_alpha_equilibrium,
    subsidies_for_stretch,
)

__all__ = [
    "NetworkDesignGame",
    "Player",
    "State",
    "BroadcastGame",
    "TreeState",
    "Deviation",
    "EquilibriumReport",
    "best_response",
    "check_equilibrium",
    "check_equilibrium_legacy",
    "BestResponseEngine",
    "EngineProfile",
    "rosenthal_potential",
    "potential_of_tree",
    "BRDResult",
    "best_response_dynamics",
    "EfficiencyReport",
    "equilibrium_spanning_trees",
    "price_of_anarchy",
    "price_of_stability",
    "MulticastGame",
    "WeightedNetworkDesignGame",
    "WeightedState",
    "check_weighted_equilibrium",
    "solve_weighted_sne",
    "CoalitionDeviation",
    "StrongEquilibriumReport",
    "check_strong_equilibrium",
    "equilibrium_stretch",
    "is_alpha_equilibrium",
    "subsidies_for_stretch",
]
