"""Unified LP solving entry point (compatibility shim).

``solve_lp(problem, method=...)`` now dispatches through the
:mod:`repro.lp.backends` registry — ``method`` accepts any registered
backend name or alias (``"highs"`` and ``"simplex"`` remain the legacy
spellings of ``highs-sparse`` / ``warm-tableau``).  This module survives
as the historical import location; new code should import from
:mod:`repro.lp.backends` directly.
"""

from __future__ import annotations

# Importing the package registers the built-in backends.
from repro.lp.backends import solve_lp
from repro.lp.backends.highs import _SCIPY_STATUS

__all__ = ["solve_lp", "_SCIPY_STATUS"]
