"""The scenario catalogue: determinism, structure, sweep/CLI integration."""

import json

import pytest

from repro import api
from repro.cli import main
from repro.games import family_of
from repro.runtime.spec import MODEL_PARAMS, MODELS, SweepSpec, generate_instance
from repro.scenarios import (
    SCENARIOS,
    UnknownScenarioError,
    build_scenario,
    get_scenario,
    scenario_instances,
    scenario_names,
)

FAMILIES = ("broadcast", "multicast", "general", "weighted", "directed")


class TestCatalogue:
    def test_six_named_families(self):
        assert scenario_names() == [
            "augmented-cube",
            "grid",
            "hypercube",
            "isp-like",
            "lower-bound-cycle",
            "power-law",
        ]

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownScenarioError, match="did you mean 'grid'"):
            get_scenario("gird")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            build_scenario("grid", n=8, seed=0, density=0.5)

    def test_same_seed_same_instance(self):
        for name in scenario_names():
            a = api.serialize.game_to_json(build_scenario(name, n=11, seed=5))
            b = api.serialize.game_to_json(build_scenario(name, n=11, seed=5))
            c = api.serialize.game_to_json(build_scenario(name, n=11, seed=6))
            assert json.dumps(a) == json.dumps(b)
            if SCENARIOS[name].stochastic:
                assert json.dumps(a) != json.dumps(c)

    def test_every_game_family_wraps_every_scenario(self):
        for name in scenario_names():
            for fam in FAMILIES:
                game = build_scenario(name, n=10, seed=2, game=fam)
                assert family_of(game) == fam
                # defaults sit in the broadcast overlap: every solver works
                report = api.solve(game, solver="sne-lp3")
                assert report.feasible

    def test_tiny_random_pairs_terminate(self):
        # One non-root node: the only non-self endpoint is the root.
        game = build_scenario("grid", n=2, seed=0, game="general", pairs="random")
        assert [(p.source, p.target) for p in game.players] == [(1, 0)]

    def test_scenario_instances_helper(self):
        pairs = scenario_instances("weighted", n=8, seed=0)
        assert [name for name, _ in pairs] == scenario_names()
        assert all(family_of(g) == "weighted" for _, g in pairs)


class TestTopologies:
    def test_grid_is_trimmed_to_n(self):
        g = build_scenario("grid", n=11, seed=0).graph
        assert g.num_nodes == 11 and g.is_connected()

    def test_cubes_round_to_powers_of_two(self):
        hq = build_scenario("hypercube", n=13, seed=0).graph
        assert hq.num_nodes == 8  # Q_3
        assert hq.num_edges == 12  # d * 2^(d-1)
        aq = build_scenario("augmented-cube", n=13, seed=0).graph
        assert aq.num_nodes == 8
        # AQ_d has (2d - 1) 2^(d-1) edges: 20 for d = 3, denser than Q_3
        assert aq.num_edges == 20

    def test_power_law_has_hubs(self):
        g = build_scenario("power-law", n=30, seed=1, m=2).graph
        degrees = sorted(g.degree(u) for u in g.nodes)
        assert g.is_connected()
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]  # heavy tail

    def test_isp_backbone_is_discounted(self):
        game = build_scenario("isp-like", n=14, seed=3, hubs=4)
        g = game.graph
        assert g.is_connected()
        ring = [(i, (i + 1) % 4) for i in range(4)]
        access = [e for u, v, _ in g.edges() for e in [(u, v)] if u >= 4 or v >= 4]
        assert all(g.has_edge(u, v) for u, v in ring)
        assert access  # at least one uplink exists

    def test_lower_bound_cycle_and_wheel(self):
        cyc = build_scenario("lower-bound-cycle", n=9, seed=0).graph
        assert cyc.num_nodes == 9 and cyc.num_edges == 9
        wheel = build_scenario("lower-bound-cycle", n=9, seed=0, shape="wheel").graph
        assert wheel.degree(0) == 8  # the hub
        with pytest.raises(ValueError, match="cycle.*wheel|wheel.*cycle"):
            build_scenario("lower-bound-cycle", n=9, seed=0, shape="torus")


class TestSweepIntegration:
    def test_models_include_scenarios(self):
        for name in scenario_names():
            assert name in MODELS
            assert "game" in MODEL_PARAMS[name]

    def test_generate_instance_dispatches_to_scenarios(self):
        a = generate_instance("grid", 10, 7, jitter=0.1, game="weighted")
        b = build_scenario("grid", n=10, seed=7, jitter=0.1, game="weighted")
        assert api.serialize.game_to_json(a) == api.serialize.game_to_json(b)

    def test_spec_expands_scenario_grid(self):
        spec = SweepSpec.from_mapping(
            {
                "solvers": ["sne-lp3"],
                "models": ["grid", "lower-bound-cycle"],
                "sizes": [8, 10],
                "count": 2,
                "seed": 0,
                "params": {"jitter": 0.1, "shape": "cycle"},
            }
        )
        jobs = spec.expand()
        assert len(jobs) == 8
        labels = {j.label for j in jobs}
        assert "grid-n8[0] x sne-lp3" in labels
        assert all(j.instance["kind"] == "broadcast-game" for j in jobs)

    def test_spec_rejects_fitting_nothing(self):
        with pytest.raises(ValueError, match="fit none of"):
            SweepSpec.from_mapping(
                {"solvers": ["sne-lp3"], "models": ["grid"], "params": {"radius": 1}}
            )

    def test_sweep_runs_scenario_family_grid(self, tmp_path):
        out = tmp_path / "sweep.json"
        rc = main(
            [
                "sweep",
                "--solver",
                "sne-lp3",
                "--model",
                "hypercube",
                "--n",
                "8",
                "--count",
                "2",
                "--seed",
                "0",
                "--no-cache",
                "--quiet",
                "--json-out",
                str(out),
            ]
        )
        assert rc == 0
        data = json.loads(out.read_text())
        assert [j["family"] for j in data["jobs"]] == ["broadcast", "broadcast"]
        assert all(j["status"] == "ok" for j in data["jobs"])


class TestCLI:
    def test_families_lists_catalogue(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out
        for fam in FAMILIES:
            assert fam in out

    def test_gen_family_round_trips(self, tmp_path, capsys):
        out = tmp_path / "instances.json"
        rc = main(
            [
                "gen",
                "--family",
                "grid",
                "--game",
                "weighted",
                "--param",
                "demands=random",
                "--n",
                "9",
                "--count",
                "2",
                "--seed",
                "1",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["kind"] == "instance-set"
        games = [api.serialize.game_from_json(p) for p in data["instances"]]
        assert all(family_of(g) == "weighted" for g in games)
        # solvable end to end through the batch CLI
        rc = main(
            ["solve-batch", str(out), "--solver", "sne-cutting-plane", "--json"]
        )
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2 and all(r["feasible"] for row in rows for r in row)

    def test_gen_param_without_family_is_an_error(self, capsys):
        assert main(["gen", "--param", "jitter=0.5"]) == 2
        assert "--family" in capsys.readouterr().err

    def test_gen_family_rejects_generator_flags(self, capsys):
        assert main(["gen", "--family", "grid", "--model", "gnp", "--density", "0.9"]) == 2
        err = capsys.readouterr().err
        assert "--model" in err and "--density" in err

    def test_run_all_json_records_families(self, tmp_path):
        out = tmp_path / "all.json"
        rc = main(["run", "all", "--skip", "E8", "--no-cache", "--json-out", str(out), "--out", str(tmp_path / "all.txt")])
        assert rc == 0
        summary = json.loads(out.read_text())
        s1 = next(e for e in summary["experiments"] if e["id"] == "S1")
        assert s1["ok"]
        assert s1["families"] == sorted(FAMILIES)
