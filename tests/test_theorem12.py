"""Tests for the Theorem 12 reduction (3SAT -> all-or-nothing SNE)."""

from itertools import product

import pytest

from repro.games import check_equilibrium
from repro.graphs.mst import is_minimum_spanning_tree
from repro.hardness.sat_reduction import (
    assignment_to_subsidized_edges,
    build_theorem12_instance,
    exact_light_assignment_check,
    label_constants,
    label_variables,
    light_enforcement_exists,
    subsidies_from_edges,
    subsidized_edges_to_assignment,
)
from repro.hardness.solvers import CNFFormula, dpll_solve


@pytest.fixture(scope="module")
def one_clause():
    return build_theorem12_instance(CNFFormula.from_lists([[1, 2, 3]]))


@pytest.fixture(scope="module")
def two_clause():
    # Shares x (sign flip) and y (same sign): both consistency gadget types.
    return build_theorem12_instance(CNFFormula.from_lists([[1, 2, 3], [-1, 2, 4]]))


@pytest.fixture(scope="module")
def unsat_instance():
    clauses = [
        [s1 * 1, s2 * 2, s3 * 3] for s1 in (1, -1) for s2 in (1, -1) for s3 in (1, -1)
    ]
    return build_theorem12_instance(CNFFormula.from_lists(clauses))


class TestLabels:
    def test_labels_distinct_within_clause(self):
        f = CNFFormula.from_lists([[1, 2, 3], [-1, 2, 4], [3, 4, 5]])
        labels = label_variables(f)
        for cl in f.clauses:
            assert len({labels[abs(x)] for x in cl}) == 3

    def test_label_constants_recurrence(self):
        n = label_constants(3)
        assert n == {3: 7, 2: 196, 1: 153664}
        assert all(n[j - 1] == 4 * n[j] ** 2 for j in (2, 3))

    def test_base_validation(self):
        with pytest.raises(ValueError):
            label_constants(2, base=5)


class TestConstruction:
    def test_counts(self, one_clause):
        inst = one_clause
        # Per gadget: mid, end, v1, v2, v3 (+ aux nodes) plus vc and root.
        assert len(inst.gadgets) == 3
        assert inst.game.graph.num_nodes == 23
        # Total players include the astronomical auxiliaries.
        assert inst.game.n_players == 153_664 + 2

    def test_rejects_non_3sat(self):
        with pytest.raises(ValueError):
            build_theorem12_instance(CNFFormula.from_lists([[1, -1, 2]]))

    def test_target_is_mst(self, one_clause):
        inst = one_clause
        assert is_minimum_spanning_tree(inst.game.graph, inst.target.edges)

    def test_usage_counts_pinned(self, two_clause):
        """The auxiliary padding hits n_j / n_j - 3 exactly (validated at
        build time; re-asserted here)."""
        inst = two_clause
        loads = inst.target.loads
        for g in inst.gadgets.values():
            assert loads[g.first_light] == g.n
            assert loads[g.second_light] == g.n - 3

    def test_consistency_gadget_types(self, two_clause):
        kinds = {(c.var, c.same_sign) for c in two_clause.consistency}
        assert kinds == {(1, False), (2, True)}

    def test_too_many_labels_rejected(self):
        # A clique of 9 mutually-conflicting variables needs 9 labels.
        clauses = []
        vars_ = list(range(1, 10))
        for i in range(0, 9, 3):
            clauses.append(vars_[i : i + 3])
        # Chain conflicts so all 9 pairwise conflict: add covering clauses.
        for i in range(1, 8):
            clauses.append([vars_[i - 1], vars_[i], vars_[i + 1]])
        import itertools

        extra = [list(c) for c in itertools.combinations(vars_, 3)]
        f = CNFFormula.from_lists(clauses + extra)
        with pytest.raises(ValueError):
            build_theorem12_instance(f)


class TestStructuralPredicates:
    def test_balanced(self, one_clause):
        inst = one_clause
        gadgets = list(inst.gadgets.values())
        balanced = {g.second_light for g in gadgets}
        assert inst.is_balanced(balanced)
        assert not inst.is_balanced(set())
        both = balanced | {gadgets[0].first_light}
        assert not inst.is_balanced(both)

    def test_consistent_requires_uniform_choice(self, two_clause):
        inst = two_clause
        # Assignment-derived sets are always consistent.
        chosen = assignment_to_subsidized_edges(inst, {1: True, 2: False, 3: True, 4: False})
        assert inst.is_consistent(chosen)
        # Flip one gadget of the shared variable x: balanced but inconsistent.
        g_pos = next(g for g in inst.gadgets.values() if g.literal == 1)
        tampered = set(chosen)
        tampered.symmetric_difference_update({g_pos.first_light, g_pos.second_light})
        assert inst.is_balanced(tampered)
        assert not inst.is_consistent(tampered)

    def test_assignment_roundtrip(self, two_clause):
        inst = two_clause
        assignment = {1: True, 2: False, 3: False, 4: True}
        chosen = assignment_to_subsidized_edges(inst, assignment)
        back = subsidized_edges_to_assignment(inst, chosen)
        assert back == assignment

    def test_inconsistent_has_no_assignment(self, two_clause):
        inst = two_clause
        assert subsidized_edges_to_assignment(inst, set()) is None


class TestCorollary20:
    """Light enforcement exists iff the formula is satisfiable."""

    def test_satisfiable_enforces(self, one_clause):
        ok, chosen = light_enforcement_exists(one_clause)
        assert ok
        # Cross-check with the float game engine (gaps are representable
        # for the positive direction).
        sub = subsidies_from_edges(one_clause, chosen)
        assert check_equilibrium(one_clause.target, sub).is_equilibrium
        # The light assignment costs 3|C| = 3.
        assert sub.cost == pytest.approx(3.0)

    def test_unsatisfiable_never_enforces(self, unsat_instance):
        inst = unsat_instance
        ok, chosen = light_enforcement_exists(inst)
        assert not ok and chosen is None
        # Every truth assignment's encoding fails the exact check.
        for bits in product([False, True], repeat=3):
            enc = assignment_to_subsidized_edges(inst, dict(zip((1, 2, 3), bits)))
            good, violations = exact_light_assignment_check(inst, enc)
            assert not good
            assert violations

    def test_assignment_enforces_iff_satisfies(self, two_clause):
        inst = two_clause
        f = inst.formula
        for bits in product([False, True], repeat=4):
            assignment = dict(zip((1, 2, 3, 4), bits))
            enc = assignment_to_subsidized_edges(inst, assignment)
            good, _ = exact_light_assignment_check(inst, enc)
            assert good == f.is_satisfied_by(assignment)

    def test_characterization_matches_exact_check_exhaustively(self, one_clause):
        """Lemma 19's criterion == the exact game check, over all balanced
        assignments of the single-clause instance."""
        inst = one_clause
        gadgets = list(inst.gadgets.values())
        for bits in product([0, 1], repeat=3):
            chosen = {
                (g.second_light if b else g.first_light)
                for g, b in zip(gadgets, bits)
            }
            good, _ = exact_light_assignment_check(inst, chosen)
            assert good == inst.characterization_holds(chosen)

    def test_unbalanced_assignments_fail(self, one_clause):
        """Lemma 14: zero or two subsidized light edges in a gadget break T."""
        inst = one_clause
        g = next(iter(inst.gadgets.values()))
        others = [x for x in inst.gadgets.values() if x is not g]
        base = {x.second_light for x in others}
        neither, _ = exact_light_assignment_check(inst, base)
        both, _ = exact_light_assignment_check(
            inst, base | {g.first_light, g.second_light}
        )
        assert not neither and not both

    def test_non_light_subsidy_rejected(self, one_clause):
        inst = one_clause
        heavy = next(
            e
            for e in inst.target.edges
            if inst.game.graph.weight(*e) > 1.5
        )
        with pytest.raises(ValueError):
            exact_light_assignment_check(inst, {heavy})

    def test_dpll_agreement(self, unsat_instance, two_clause):
        assert dpll_solve(unsat_instance.formula) is None
        assert dpll_solve(two_clause.formula) is not None
