"""Exact BIN PACKING (the paper's strict fill-to-the-brim variant).

Theorem 3 reduces from instances where all sizes and the capacity are even,
``sum(sizes) = k * C`` and every bin must be filled *exactly* to ``C``.
:func:`to_strict_form` performs the paper's conversion from the conventional
problem (add unit items, double everything); :func:`solve_bin_packing_exact`
is a backtracking oracle used to verify the reduction end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BinPackingInstance:
    """Strict bin packing: fill each of ``n_bins`` bins to exactly
    ``capacity`` with all items."""

    sizes: Tuple[int, ...]
    n_bins: int
    capacity: int

    def __post_init__(self) -> None:
        if self.n_bins <= 0 or self.capacity <= 0:
            raise ValueError("n_bins and capacity must be positive")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("item sizes must be positive")

    def is_strict(self) -> bool:
        """The Theorem 3 preconditions: even sizes/capacity, exact total,
        capacity at least the largest item."""
        return (
            all(s % 2 == 0 for s in self.sizes)
            and self.capacity % 2 == 0
            and sum(self.sizes) == self.n_bins * self.capacity
            and (not self.sizes or max(self.sizes) <= self.capacity)
        )

    def check_solution(self, assignment: Sequence[int]) -> bool:
        """Does ``assignment[i] = bin of item i`` fill every bin exactly?"""
        if len(assignment) != len(self.sizes):
            return False
        loads = [0] * self.n_bins
        for size, b in zip(self.sizes, assignment):
            if not 0 <= b < self.n_bins:
                return False
            loads[b] += size
        return all(load == self.capacity for load in loads)


def to_strict_form(
    sizes: Sequence[int], capacity: int, n_bins: int
) -> Tuple[BinPackingInstance, int]:
    """The paper's conversion of conventional BIN PACKING to strict form.

    Conventional question: do the items fit into ``n_bins`` bins of size
    ``capacity`` (bins may be slack)?  Conversion: pad with unit items up to
    total ``n_bins * capacity``, then double all sizes and the capacity so
    everything is even.  Returns the strict instance and the number of unit
    padding items added (before doubling).

    The conventional instance is feasible iff the strict one is: padding
    items are flexible enough to top every bin up to the brim.
    """
    if any(s <= 0 for s in sizes):
        raise ValueError("sizes must be positive")
    if max(sizes, default=0) > capacity:
        raise ValueError("an item exceeds the bin capacity")
    slack = n_bins * capacity - sum(sizes)
    if slack < 0:
        raise ValueError("items cannot fit even fractionally")
    padded = list(sizes) + [1] * slack
    strict = BinPackingInstance(
        sizes=tuple(2 * s for s in padded),
        n_bins=n_bins,
        capacity=2 * capacity,
    )
    assert strict.is_strict()
    return strict, slack


def solve_bin_packing_exact(
    instance: BinPackingInstance, max_nodes: int = 2_000_000
) -> Optional[List[int]]:
    """Exact strict bin packing by backtracking; ``None`` when infeasible.

    Items are placed largest-first; bins are treated symmetrically (an item
    may open at most one new bin) to kill permutation blowup.  Raises
    ``RuntimeError`` if the node budget is exhausted (never on the instance
    sizes used in tests/experiments).
    """
    if sum(instance.sizes) != instance.n_bins * instance.capacity:
        return None
    if instance.sizes and max(instance.sizes) > instance.capacity:
        return None

    order = sorted(range(len(instance.sizes)), key=lambda i: -instance.sizes[i])
    loads = [0] * instance.n_bins
    placement = [-1] * len(instance.sizes)
    nodes = 0

    def backtrack(pos: int) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("bin packing search exceeded the node budget")
        if pos == len(order):
            return all(load == instance.capacity for load in loads)
        item = order[pos]
        size = instance.sizes[item]
        seen_loads = set()
        for b in range(instance.n_bins):
            if loads[b] + size > instance.capacity:
                continue
            if loads[b] in seen_loads:
                continue  # symmetric bin: identical subtree
            seen_loads.add(loads[b])
            loads[b] += size
            placement[item] = b
            if backtrack(pos + 1):
                return True
            loads[b] -= size
            placement[item] = -1
        return False

    if backtrack(0):
        assert instance.check_solution(placement)
        return placement
    return None
