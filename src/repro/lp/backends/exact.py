"""The ``exact`` backend: Fraction-arithmetic two-phase simplex + certificates.

Every float backend in this repo ultimately answers with IEEE-754 doubles;
this module answers with :class:`fractions.Fraction`.  The simplex mirrors
the pivot structure of :mod:`repro.lp.simplex` (same standard-form
compilation: shift lower bounds out, compile finite upper bounds into
rows; same two-phase artificial-variable scheme) but pivots with exact
rational arithmetic under Bland's rule throughout, which guarantees
termination without any epsilon anywhere.  ``Fraction(float)`` is exact
binary-to-rational conversion, so the LP the exact simplex solves is
*precisely* the LP the float backends saw — not a re-rounded cousin.

Each solve can emit an :class:`ExactCertificate` whose :meth:`~
ExactCertificate.verify` re-checks the verdict by pure-rational
substitution against the original problem:

* ``OPTIMAL`` — primal feasibility, dual feasibility (KKT multipliers
  extracted from the optimal tableau's reduced costs), complementary
  slackness and the objective value, all as exact identities;
* ``INFEASIBLE`` — a Farkas vector ``u >= 0`` with ``u.A >= 0`` and
  ``u.b < 0`` over the compiled standard form (no ``x >= 0`` point can
  satisfy ``A x <= b``);
* ``UNBOUNDED`` — a feasible point plus an improving ray ``d >= 0`` with
  ``A d <= 0`` and ``c . d < 0``.

Knife-edge instances.  An LP assembled from float arithmetic can be
*exactly* infeasible by one ulp while every float backend solves it
happily: LP (2)'s equilibrium row, for example, carries a float-rounded
path-cost sum as its rhs, which can exceed the exact telescoped sum of
the per-edge relaxation rows by ~1e-17.  The strict rational verdict
(INFEASIBLE, with a verifying Farkas vector) is then true but answers a
different question than the float backends.  :func:`exact_solve` and
:func:`certify_result` therefore fall back, when the minimal uniform rhs
relaxation defeating the Farkas certificate is below :data:`RHS_RELAX`
(``2**-30``, inside every float backend's feasibility tolerance), to
solving the LP with every row's rhs relaxed by exactly ``RHS_RELAX``.
The relaxation is *part of the certificate* (:attr:`ExactCertificate.
rhs_relax`) and of the exact verification — never a hidden epsilon.

Cost model: exact pivots are O(m·n) Fraction multiplies with growing
denominators — orders of magnitude slower than HiGHS.  The backend exists
to *certify* answers on demand (``--certify``, the conformance corpus),
not to replace the float production path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lp.problem import LinearProgram, LPResult, LPStatus

#: termination backstop — Bland's rule cannot cycle, so hitting this means
#: a bug, not a hard instance; sized far above any test problem's pivots
_MAX_PIVOTS = 200_000

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: the tolerance-faithful fallback relaxation: when an LP is exactly
#: infeasible by less than this (per uniformly-relaxed rhs unit), the
#: float backends' ~1e-9 feasibility tolerances all report it solvable,
#: so the certified answer is for the RHS_RELAX-relaxed LP instead.
#: Exactly representable as both a Fraction and a float (~9.31e-10).
RHS_RELAX = Fraction(1, 2**30)


def _frac(value: float) -> Fraction:
    """Exact rational for a finite float (binary expansion, no rounding)."""
    return Fraction(value)


def _frac_vec(values: Sequence[float]) -> List[Fraction]:
    return [_frac(float(v)) for v in values]


# ---------------------------------------------------------------------------
# Standard-form compilation (exact mirror of simplex._compile_standard_form)
# ---------------------------------------------------------------------------


@dataclass
class _StandardForm:
    """``min c.x' : A x' <= b, x' >= 0`` with ``x = x' + shift`` (all exact)."""

    A: List[List[Fraction]]  # m rows (original rows first, then upper-bound rows)
    b: List[Fraction]
    c: List[Fraction]
    shift: List[Fraction]
    n: int  # variables
    m0: int  # original rows (before upper-bound rows)
    ub_cols: List[int]  # ub row k bounds variable ub_cols[k]


def _compile_exact(
    problem: LinearProgram, rhs_relax: Fraction = _ZERO
) -> _StandardForm:
    n = problem.n_vars
    lower = _frac_vec(problem.lower)
    if any(math.isinf(float(lv)) for lv in problem.lower):
        raise ValueError("exact backend requires finite lower bounds")
    c = _frac_vec(problem.c)
    rows = [_frac_vec(r) for r in problem.rows]
    b = [
        _frac(rv) + rhs_relax - sum(row[j] * lower[j] for j in range(n))
        for row, rv in zip(rows, problem.rhs)
    ]
    m0 = len(rows)
    ub_cols: List[int] = []
    for j, uv in enumerate(problem.upper):
        if math.isfinite(float(uv)):
            ub_row = [_ZERO] * n
            ub_row[j] = _ONE
            rows.append(ub_row)
            b.append(_frac(float(uv)) + rhs_relax - lower[j])
            ub_cols.append(j)
    return _StandardForm(A=rows, b=b, c=c, shift=lower, n=n, m0=m0, ub_cols=ub_cols)


# ---------------------------------------------------------------------------
# Exact tableau pivoting (Bland's rule; terminates, no epsilons)
# ---------------------------------------------------------------------------


def _exact_pivot(
    T: List[List[Fraction]], rhs: List[Fraction], row: int, col: int, basis: List[int]
) -> None:
    piv = T[row][col]
    T[row] = [v / piv for v in T[row]]
    rhs[row] /= piv
    prow = T[row]
    for i in range(len(T)):
        if i != row and T[i][col] != 0:
            f = T[i][col]
            T[i] = [v - f * p for v, p in zip(T[i], prow)]
            rhs[i] -= f * rhs[row]
    basis[row] = col


def _exact_reduced(
    T: List[List[Fraction]], obj: List[Fraction], basis: List[int]
) -> List[Fraction]:
    """Reduced costs ``obj - obj_B . T`` as exact rationals."""
    total = len(obj)
    reduced = list(obj)
    for i, bi in enumerate(basis):
        w = obj[bi]
        if w != 0:
            ti = T[i]
            for j in range(total):
                if ti[j] != 0:
                    reduced[j] -= w * ti[j]
    return reduced


def _exact_run(
    T: List[List[Fraction]],
    rhs: List[Fraction],
    obj: List[Fraction],
    basis: List[int],
    frozen: Optional[set] = None,
) -> Tuple[LPStatus, Optional[int], int]:
    """Bland-rule primal simplex in place.

    Returns ``(OPTIMAL, None, pivots)`` or ``(UNBOUNDED, entering_col,
    pivots)`` — the column witnessing unboundedness feeds the ray
    certificate.
    """
    m = len(T)
    for it in range(_MAX_PIVOTS):
        reduced = _exact_reduced(T, obj, basis)
        col = -1
        for j, r in enumerate(reduced):  # Bland: lowest improving index
            if r < 0 and (frozen is None or j not in frozen):
                col = j
                break
        if col < 0:
            return LPStatus.OPTIMAL, None, it
        row, best = -1, None
        for i in range(m):
            t = T[i][col]
            if t > 0:
                ratio = rhs[i] / t
                if best is None or ratio < best or (ratio == best and basis[i] < basis[row]):
                    row, best = i, ratio
        if row < 0:
            return LPStatus.UNBOUNDED, col, it
        _exact_pivot(T, rhs, row, col, basis)
    raise RuntimeError("exact simplex exceeded the pivot backstop (Bland cannot cycle)")


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


def _frac_str(v: Fraction) -> str:
    return f"{v.numerator}/{v.denominator}" if v.denominator != 1 else str(v.numerator)


@dataclass
class ExactCertificate:
    """An exactly verifiable proof of one LP verdict.

    Every field is a :class:`fractions.Fraction` (or a tuple of them);
    :meth:`verify` re-derives the verdict from the original problem by
    pure-rational substitution — no floats, no tolerances.
    """

    status: LPStatus
    #: exact optimum (OPTIMAL) in original variable space
    x: Optional[Tuple[Fraction, ...]] = None
    objective: Optional[Fraction] = None
    #: KKT multipliers (OPTIMAL): one per original row / lower bound / upper bound
    row_duals: Optional[Tuple[Fraction, ...]] = None
    lower_duals: Optional[Tuple[Fraction, ...]] = None
    upper_duals: Optional[Tuple[Fraction, ...]] = None
    #: Farkas vector over the compiled standard-form rows (INFEASIBLE)
    farkas: Optional[Tuple[Fraction, ...]] = None
    #: improving ray + feasible point in original space (UNBOUNDED)
    ray: Optional[Tuple[Fraction, ...]] = None
    feasible_point: Optional[Tuple[Fraction, ...]] = None
    #: exact pivots spent producing this certificate
    pivots: int = 0
    #: uniform rhs relaxation the verdict is stated for (0 = the strict LP;
    #: RHS_RELAX when the tolerance-faithful fallback engaged — see the
    #: module docstring).  Part of verification, never a hidden epsilon.
    rhs_relax: Fraction = _ZERO
    #: optional label tying the certificate to what it certifies
    subject: Dict[str, object] = field(default_factory=dict)

    # -- verification --------------------------------------------------------

    def verify(self, problem: LinearProgram) -> bool:
        """Re-check this certificate against ``problem``, exactly."""
        if self.status is LPStatus.OPTIMAL:
            return self._verify_optimal(problem)
        if self.status is LPStatus.INFEASIBLE:
            return self._verify_infeasible(problem)
        if self.status is LPStatus.UNBOUNDED:
            return self._verify_unbounded(problem)
        return False

    def _verify_optimal(self, problem: LinearProgram) -> bool:
        assert self.x is not None and self.objective is not None
        assert self.row_duals is not None and self.lower_duals is not None
        assert self.upper_duals is not None
        n = problem.n_vars
        x = list(self.x)
        c = _frac_vec(problem.c)
        lower = _frac_vec(problem.lower)
        rows = [_frac_vec(r) for r in problem.rows]
        rhs = _frac_vec(problem.rhs)
        mu, lam, nu = list(self.row_duals), list(self.lower_duals), list(self.upper_duals)
        if len(x) != n or len(mu) != len(rows) or len(lam) != n or len(nu) != n:
            return False
        relax = self.rhs_relax
        # 1. Primal feasibility (w.r.t. the relaxed rhs the verdict is for).
        for j in range(n):
            if x[j] < lower[j]:
                return False
            uj = float(problem.upper[j])
            if math.isfinite(uj) and x[j] > _frac(uj) + relax:
                return False
        slacks = [
            bv + relax - sum(row[j] * x[j] for j in range(n))
            for row, bv in zip(rows, rhs)
        ]
        if any(s < 0 for s in slacks):
            return False
        # 2. Dual feasibility + stationarity:  c + A^T mu + nu - lam = 0.
        if any(m_ < 0 for m_ in mu) or any(v < 0 for v in lam) or any(v < 0 for v in nu):
            return False
        for j in range(n):
            station = c[j] + sum(mu[i] * rows[i][j] for i in range(len(rows))) + nu[j] - lam[j]
            if station != 0:
                return False
        # 3. Complementary slackness.
        for i in range(len(rows)):
            if mu[i] != 0 and slacks[i] != 0:
                return False
        for j in range(n):
            if lam[j] != 0 and x[j] != lower[j]:
                return False
            if nu[j] != 0:
                uj = float(problem.upper[j])
                if not math.isfinite(uj) or x[j] != _frac(uj) + relax:
                    return False
        # 4. Objective identity.
        return sum(c[j] * x[j] for j in range(n)) == self.objective

    def _verify_infeasible(self, problem: LinearProgram) -> bool:
        assert self.farkas is not None
        sf = _compile_exact(problem, self.rhs_relax)
        u = list(self.farkas)
        if len(u) != len(sf.A) or any(v < 0 for v in u):
            return False
        # u >= 0, u.A >= 0 componentwise, u.b < 0: then any x' >= 0 gives
        # 0 <= (u.A).x' <= u.b < 0 — the standard form is empty, hence so is
        # the original feasible region (the compilation is a bijection).
        for j in range(sf.n):
            if sum(u[i] * sf.A[i][j] for i in range(len(sf.A))) < 0:
                return False
        return sum(u[i] * sf.b[i] for i in range(len(sf.b))) < 0

    def _verify_unbounded(self, problem: LinearProgram) -> bool:
        assert self.ray is not None and self.feasible_point is not None
        n = problem.n_vars
        d = list(self.ray)
        p = list(self.feasible_point)
        if len(d) != n or len(p) != n:
            return False
        lower = _frac_vec(problem.lower)
        rows = [_frac_vec(r) for r in problem.rows]
        rhs = _frac_vec(problem.rhs)
        c = _frac_vec(problem.c)
        relax = self.rhs_relax
        # Feasible point (w.r.t. the relaxed rhs the verdict is for).
        for j in range(n):
            if p[j] < lower[j]:
                return False
            uj = float(problem.upper[j])
            if math.isfinite(uj) and p[j] > _frac(uj) + relax:
                return False
        for row, bv in zip(rows, rhs):
            if sum(row[j] * p[j] for j in range(n)) > bv + relax:
                return False
        # Improving recession direction: d >= 0 (w.r.t. the shifted cone),
        # zero on finitely-bounded coordinates, A d <= 0, c.d < 0.
        for j in range(n):
            if d[j] < 0:
                return False
            if math.isfinite(float(problem.upper[j])) and d[j] != 0:
                return False
        for row in rows:
            if sum(row[j] * d[j] for j in range(n)) > 0:
                return False
        return sum(c[j] * d[j] for j in range(n)) < 0

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready rendering (fractions as ``"p/q"`` strings)."""
        out: dict = {"status": self.status.name, "pivots": self.pivots}
        if self.rhs_relax != 0:
            out["rhs_relax"] = _frac_str(self.rhs_relax)
        if self.objective is not None:
            out["objective"] = _frac_str(self.objective)
            out["objective_float"] = float(self.objective)
        if self.x is not None:
            out["x"] = [_frac_str(v) for v in self.x]
        if self.row_duals is not None:
            out["row_duals"] = [_frac_str(v) for v in self.row_duals]
        if self.farkas is not None:
            out["farkas"] = [_frac_str(v) for v in self.farkas]
        if self.ray is not None:
            out["ray"] = [_frac_str(v) for v in self.ray]
        if self.subject:
            out["subject"] = dict(self.subject)
        return out


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------


def exact_solve_certified(
    problem: LinearProgram,
    max_iter: int = 20_000,
    rhs_relax: Fraction = _ZERO,
) -> Tuple[LPResult, ExactCertificate]:
    """Solve exactly and return ``(float-view result, certificate)``.

    ``max_iter`` is accepted for contract uniformity but ignored — Bland's
    rule terminates on its own and a certificate must never be truncated.
    ``rhs_relax`` states the verdict for the uniformly rhs-relaxed LP (see
    the module docstring); it is recorded on the certificate and enters
    its verification, so the proof stays an exact statement.
    """
    sf = _compile_exact(problem, rhs_relax)
    n, m = sf.n, len(sf.A)

    if m == 0:
        # Only x >= lower remains: optimal at the lower-bound vertex unless
        # some cost is negative (then the coordinate ray is improving).
        neg = next((j for j in range(n) if sf.c[j] < 0), None)
        if neg is not None:
            ray = [_ZERO] * n
            ray[neg] = _ONE
            cert = ExactCertificate(
                LPStatus.UNBOUNDED,
                ray=tuple(ray),
                feasible_point=tuple(sf.shift),
                rhs_relax=rhs_relax,
            )
            return LPResult(LPStatus.UNBOUNDED), cert
        x = tuple(sf.shift)
        obj = sum(sf.c[j] * x[j] for j in range(n))
        cert = ExactCertificate(
            LPStatus.OPTIMAL,
            x=x,
            objective=obj,
            row_duals=(),
            lower_duals=tuple(sf.c),
            upper_duals=tuple([_ZERO] * n),
            rhs_relax=rhs_relax,
        )
        return (
            LPResult(
                LPStatus.OPTIMAL,
                x=np.array([float(v) for v in x]),
                objective=float(obj),
            ),
            cert,
        )

    # Build the tableau: n structural + m slack + n_art artificial columns.
    neg = [bv < 0 for bv in sf.b]
    n_art = sum(neg)
    total = n + m + n_art
    T: List[List[Fraction]] = []
    rhs: List[Fraction] = []
    basis: List[int] = []
    art_cols: List[int] = []
    k = 0
    for i in range(m):
        sign = -_ONE if neg[i] else _ONE
        row = [_ZERO] * total
        for j in range(n):
            row[j] = -sf.A[i][j] if neg[i] else sf.A[i][j]
        row[n + i] = sign
        if neg[i]:
            col = n + m + k
            row[col] = _ONE
            art_cols.append(col)
            basis.append(col)
            k += 1
        else:
            basis.append(n + i)
        T.append(row)
        rhs.append(-sf.b[i] if neg[i] else sf.b[i])

    pivots = 0

    # Phase 1: minimize the artificial sum.
    if n_art:
        obj1 = [_ZERO] * total
        for col in art_cols:
            obj1[col] = _ONE
        status, _, spent = _exact_run(T, rhs, obj1, basis)
        pivots += spent
        # Phase 1 is bounded below by 0, so UNBOUNDED is impossible.
        assert status is LPStatus.OPTIMAL
        reduced1 = _exact_reduced(T, obj1, basis)
        art_set = set(art_cols)
        # Phase-1 objective value = sum of the basic artificial values.
        val = sum(rhs[i] for i in range(m) if basis[i] in art_set)
        if val > 0:
            # Farkas vector from the phase-1 duals: the reduced cost of
            # slack i is exactly u_i after the sign flip baked into the
            # tableau rows (see _verify_infeasible).
            u = tuple(reduced1[n + i] for i in range(m))
            cert = ExactCertificate(
                LPStatus.INFEASIBLE, farkas=u, pivots=pivots, rhs_relax=rhs_relax
            )
            return LPResult(LPStatus.INFEASIBLE), cert
        # Drive remaining artificials out of the basis where possible,
        # then retire the artificial columns entirely (exact mirror of the
        # float pipeline in repro.lp.simplex._two_phase_tableau).
        for i in range(m):
            if basis[i] in art_set and rhs[i] == 0:
                pivot_col = next(
                    (j for j in range(n + m) if T[i][j] != 0), None
                )
                if pivot_col is not None:
                    _exact_pivot(T, rhs, i, pivot_col, basis)
        for i in range(m):
            if basis[i] in art_set:
                # Redundant row: inert identity placeholder.
                T[i] = [_ZERO] * total
                T[i][basis[i]] = _ONE
                rhs[i] = _ZERO
            else:
                for col in art_cols:
                    T[i][col] = _ZERO
        for i in range(m):
            if basis[i] in art_set:
                T[i][basis[i]] = _ONE

    # Phase 2: the real objective.
    obj2 = [_ZERO] * total
    for j in range(n):
        obj2[j] = sf.c[j]
    frozen = set(art_cols) if n_art else None
    status, unb_col, spent = _exact_run(T, rhs, obj2, basis, frozen=frozen)
    pivots += spent

    if status is LPStatus.UNBOUNDED:
        assert unb_col is not None
        ray_full = [_ZERO] * total
        ray_full[unb_col] = _ONE
        for i in range(m):
            if T[i][unb_col] != 0:
                ray_full[basis[i]] = -T[i][unb_col]
        ray = tuple(ray_full[:n])
        point_full = [_ZERO] * total
        for i in range(m):
            point_full[basis[i]] = rhs[i]
        point = tuple(point_full[j] + sf.shift[j] for j in range(n))
        cert = ExactCertificate(
            LPStatus.UNBOUNDED,
            ray=ray,
            feasible_point=point,
            pivots=pivots,
            rhs_relax=rhs_relax,
        )
        return LPResult(LPStatus.UNBOUNDED), cert

    assert status is LPStatus.OPTIMAL
    x_std = [_ZERO] * total
    for i in range(m):
        x_std[basis[i]] = rhs[i]
    x = tuple(x_std[j] + sf.shift[j] for j in range(n))
    obj_val = sum(sf.c[j] * x[j] for j in range(n))

    reduced = _exact_reduced(T, obj2, basis)
    mu_all = [reduced[n + i] for i in range(m)]  # standard-form row duals
    lam = [reduced[j] for j in range(n)]  # lower-bound duals (x' >= 0)
    row_duals = mu_all[: sf.m0]
    nu = [_ZERO] * n  # upper-bound duals
    for k_, j in enumerate(sf.ub_cols):
        nu[j] = mu_all[sf.m0 + k_]
    cert = ExactCertificate(
        LPStatus.OPTIMAL,
        x=x,
        objective=obj_val,
        row_duals=tuple(row_duals),
        lower_duals=tuple(lam),
        upper_duals=tuple(nu),
        pivots=pivots,
        rhs_relax=rhs_relax,
    )
    result = LPResult(
        LPStatus.OPTIMAL,
        x=np.array([float(v) for v in x]),
        objective=float(obj_val),
    )
    return result, cert


def _min_uniform_relax(
    problem: LinearProgram, farkas: Tuple[Fraction, ...]
) -> Optional[Fraction]:
    """Smallest uniform rhs relaxation that defeats this Farkas vector.

    ``u . (b + t*1) >= 0`` first holds at ``t = -u.b / sum(u)``; a larger
    relaxation *may* still leave the LP infeasible (another certificate
    can exist), but a smaller one certainly cannot fix it.
    """
    sf = _compile_exact(problem)
    u_dot_b = sum(u * b for u, b in zip(farkas, sf.b))
    u_sum = sum(farkas)
    if u_sum <= 0:  # degenerate certificate; no finite relaxation bound
        return None
    return -u_dot_b / u_sum


def exact_solve_certified_auto(
    problem: LinearProgram, max_iter: int = 20_000
) -> Tuple[LPResult, ExactCertificate]:
    """Strict exact solve, with the tolerance-faithful fallback.

    Answers for the strict LP whenever possible.  When the strict LP is
    infeasible by less than :data:`RHS_RELAX` — a knife-edge artifact of
    float-assembled coefficients that every float backend's feasibility
    tolerance absorbs silently — re-solves the LP with each rhs relaxed
    by exactly ``RHS_RELAX`` and returns that verdict, with the
    relaxation recorded on the certificate.  Genuinely infeasible LPs
    keep their strict Farkas certificate.
    """
    result, cert = exact_solve_certified(problem, max_iter=max_iter)
    if cert.status is LPStatus.INFEASIBLE:
        assert cert.farkas is not None
        t_min = _min_uniform_relax(problem, cert.farkas)
        if t_min is not None and 0 < t_min <= RHS_RELAX:
            relaxed, relaxed_cert = exact_solve_certified(
                problem, max_iter=max_iter, rhs_relax=RHS_RELAX
            )
            relaxed_cert.pivots += cert.pivots
            if relaxed_cert.status is not LPStatus.INFEASIBLE:
                return relaxed, relaxed_cert
    return result, cert


def exact_solve(problem: LinearProgram, max_iter: int = 20_000) -> LPResult:
    """The registered backend entry: exact solve, float-view result."""
    result, _ = exact_solve_certified_auto(problem, max_iter=max_iter)
    return result


def certify_result(
    problem: LinearProgram, subject: Optional[Dict[str, object]] = None
) -> ExactCertificate:
    """Exact-solve ``problem`` and return a verified certificate.

    Raises ``RuntimeError`` if the freshly produced certificate fails its
    own :meth:`~ExactCertificate.verify` — that would mean an arithmetic
    bug, and a certificate that cannot certify itself must never be
    reported.
    """
    _, cert = exact_solve_certified_auto(problem)
    if subject:
        cert.subject.update(subject)
    if not cert.verify(problem):
        raise RuntimeError(
            f"exact certificate failed self-verification (status {cert.status.name})"
        )
    return cert
