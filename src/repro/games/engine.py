"""Vectorized best-response engine over the indexed graph core.

The paper's algorithms (the Theorem 1 separation oracle, equilibrium
verification, best-response dynamics, the SND heuristics) all reduce to the
same primitive: price every edge for a deviating player at
``(w_a - b_a) / (n_a + 1 - n_a^i)`` and run a shortest-path query.  The
legacy implementation rebuilt a pricing closure and a hashable-keyed
Dijkstra per query; this engine interns the game graph once
(:meth:`BestResponseEngine.for_graph` caches per graph mutation version),
keeps ``w``, ``b`` and the usage counts ``n_a`` in flat arrays indexed by
edge id, and prices deviations with two vector operations plus an
``O(|T_i|)`` fix-up for the deviator's own edges.

Scans are *batched*: every query in a round shares one join-priced
per-arc cost list (own edges patched in place, ``O(|T_i|)`` per query)
and one reusable Dijkstra workspace, and certificate passes skip whole
searches whose outcome is already decided — the Lemma 2 incidence check
for broadcast trees (no searches at all once the constraints hold) and
shared reverse-search lower bounds for shared-target player groups.
:meth:`_StateBinding.scan_legacy` keeps the pre-batching per-player
reference, and :class:`OracleStats` counts searches run, batch skips,
cutting-plane rounds and LP warm starts per engine.

Layers on top:

* :func:`repro.games.equilibrium.check_equilibrium` binds a state and scans
  players through :meth:`_StateBinding.scan`;
* ``repro.subsidies.sne_lp`` reuses one binding across all cutting-plane
  rounds, re-pricing per round from the LP iterate, and reports the
  engine's :class:`OracleStats` delta as the solve's ``profile``;
* :class:`EngineProfile` is the mutable strategy profile behind
  best-response dynamics — usage counts and the shared arc-cost list are
  updated incrementally per move instead of revalidating a full ``State``
  object.
"""

from __future__ import annotations

import threading
from typing import Dict, List, NamedTuple, Optional, Tuple, Union

import numpy as np

from repro.games.base import FairSharing
from repro.games.broadcast import TreeState
from repro.games.game import NetworkDesignGame, State, Subsidies
from repro.graphs.core import DijkstraWorkspace, IndexedGraph, dijkstra_indexed
from repro.graphs.graph import Graph
from repro.utils.tolerances import EQ_TOL, is_improvement

#: relative slack protecting batched lower-bound certificates against the
#: (summation-order) float noise between a shared and a per-player search;
#: orders of magnitude below the equilibrium tolerances, so a borderline
#: player simply falls through to the exact per-player query
_CERT_SLACK = 1e-12

#: any bindable target state (weighted / directed states carry a
#: ``binding_kind = "rule"`` marker and dispatch to :class:`_RuleBinding`)
AnyState = Union[State, TreeState]


def _walk_path_back(
    pred: List[int], pred_edge: List[int], source_id: int, target_id: int
) -> Tuple[List[int], List[int]]:
    """Path source -> target (node ids, edge ids) from Dijkstra predecessors."""
    rev_nodes = [target_id]
    rev_edges: List[int] = []
    x = target_id
    while x != source_id:
        rev_edges.append(pred_edge[x])
        x = pred[x]
        rev_nodes.append(x)
    rev_nodes.reverse()
    rev_edges.reverse()
    return rev_nodes, rev_edges


class BestResponse(NamedTuple):
    """One best-response query result, in engine (int id) coordinates."""

    player: object  # player index (general game) or node label (broadcast)
    position: int  # index into the binding's player order
    current_cost: float
    deviation_cost: float
    node_ids: List[int]  # deviation path, source -> target
    edge_ids: List[int]


class OracleStats:
    """Monotone counters for the engine's oracle work.

    One instance lives on each :class:`BestResponseEngine` *per thread*
    (engines are cached per graph and shared, e.g. by ``solve_many``'s
    thread executor — thread-local counters keep concurrent solves from
    corrupting each other's deltas); solvers snapshot it before and after
    a solve and report the delta — see the ``profile`` entry in
    :class:`~repro.api.report.SolveReport` metadata.  ``cut_rounds`` and
    ``warm_start_hits`` are filled in by the LP layer's callers (the
    engine itself only counts searches and batch skips).
    """

    __slots__ = ("dijkstra_calls", "players_batched", "cut_rounds", "warm_start_hits")

    _FIELDS = ("dijkstra_calls", "players_batched", "cut_rounds", "warm_start_hits")

    def __init__(self) -> None:
        self.dijkstra_calls = 0
        self.players_batched = 0
        self.cut_rounds = 0
        self.warm_start_hits = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    def snapshot(self) -> Tuple[int, ...]:
        """Current counter values (pair with :meth:`delta`)."""
        return tuple(getattr(self, name) for name in self._FIELDS)

    def delta(self, since: Tuple[int, ...]) -> dict:
        """Counter increments since a :meth:`snapshot`."""
        return {
            name: getattr(self, name) - before
            for name, before in zip(self._FIELDS, since)
        }


class BestResponseEngine:
    """Shared per-graph machinery for vectorized best-response queries."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.ig: IndexedGraph = graph.to_indexed()
        self.num_edges = self.ig.num_edges
        self.edge_weights = self.ig.edge_weights
        self._htab: Optional[np.ndarray] = None
        self._stats_local = threading.local()

    @property
    def stats(self) -> OracleStats:
        """Oracle-work counters for the calling thread.

        Thread-local so concurrent solves sharing this (per-graph cached)
        engine keep independent, internally consistent snapshot/delta
        windows.
        """
        stats = getattr(self._stats_local, "stats", None)
        if stats is None:
            stats = self._stats_local.stats = OracleStats()
        return stats

    @classmethod
    def for_graph(cls, graph: Graph) -> "BestResponseEngine":
        """Engine for ``graph``, cached on the graph keyed by its version."""
        cached = getattr(graph, "_engine_cache", None)
        if cached is not None and cached[0] == graph._version:
            return cached[1]
        engine = cls(graph)
        graph._engine_cache = (graph._version, engine)
        return engine

    # -- pricing -----------------------------------------------------------

    def subsidy_vector(self, subsidies: Optional[Subsidies]) -> np.ndarray:
        """Per-edge-id subsidy array from any edge mapping.

        Lookups go through ``subsidies.get(canonical_edge)`` per edge — the
        exact protocol the dict-based layers used — so assignments that
        ignore non-canonical keys keep ignoring them.
        """
        b = np.zeros(self.num_edges)
        if subsidies:
            get = subsidies.get
            for i, e in enumerate(self.ig.edge_labels):
                val = get(e, 0.0)
                if val:
                    b[i] = val
        return b

    def net_weights(self, b: np.ndarray) -> np.ndarray:
        """``max(0, w_a - b_a)`` per edge id; rejects NaN costs up front."""
        wb = np.maximum(0.0, self.edge_weights - b)
        if np.isnan(wb).any():
            raise ValueError("NaN in subsidized edge costs")
        return wb

    def harmonic_table(self, kmax: int) -> np.ndarray:
        """``H_0..H_kmax`` as an array (cached; Rosenthal potential kernel)."""
        tab = self._htab
        if tab is None or len(tab) <= kmax:
            tab = np.concatenate([[0.0], np.cumsum(1.0 / np.arange(1.0, kmax + 1.0))])
            self._htab = tab
        return tab

    # -- state bindings ----------------------------------------------------

    def bind(self, state: AnyState) -> "_StateBinding":
        """Bind a target state: convert its usage/paths into id arrays once.

        Dispatch covers every game family: broadcast ``TreeState``,
        general ``State``, and any state carrying the ``binding_kind =
        "rule"`` marker (weighted demands, per-edge splits, directed arcs)
        — the latter run through the :class:`~repro.games.base.
        CostSharingRule`-priced :class:`_RuleBinding`.

        States are immutable once validated, so the binding is cached on
        the state (keyed by this engine): repeated checks of one target —
        the LP verification loop, the SND candidate scoring — pay for id
        translation once.
        """
        cached = getattr(state, "_binding_cache", None)
        if cached is not None and cached[0] is self:
            return cached[1]
        if isinstance(state, TreeState):
            binding: _StateBinding = _TreeBinding(self, state)
        elif getattr(state, "binding_kind", "general") == "rule":
            binding = _RuleBinding(self, state)
        else:
            binding = _GeneralBinding(self, state)
        state._binding_cache = (self, binding)
        return binding


class _StateBinding:
    """A target state in engine coordinates (players, usage, own paths)."""

    engine: BestResponseEngine
    player_keys: List[object]
    usage: np.ndarray  # per-edge-id usage counts n_a(T)

    def current_path_eids(self, position: int) -> List[int]:
        """Edge ids of the player's current path (own edges)."""
        raise NotImplementedError

    # -- share coefficients (the LP-row protocol) --------------------------
    #
    # A player's share of edge ``a`` is linear in the net weight:
    # ``share = coeff * (w_a - b_a)``.  These two methods are all the
    # LP (1) cutting-plane oracle needs to emit rows for *any* family —
    # fair (1/n_a), demand-proportional (d_i/L_a) or per-edge splits.

    def current_share_coeff(self, position: int, eid: int) -> float:
        """``d share_i(a) / d (w_a - b_a)`` on the player's own path.

        Fair-sharing default: ``1 / n_a``; rule bindings override.
        """
        return 1.0 / self.usage[eid]

    def joining_share_coeff(self, position: int, eid: int) -> float:
        """The same derivative for an edge her deviation path would use.

        Fair-sharing default: ``1 / (n_a + 1 - n_a^i)``.
        """
        extra = 0 if eid in self._own_eids(position) else 1
        return 1.0 / (self.usage[eid] + extra)

    def _own_eids(self, position: int) -> set:
        """Own-path edge ids as a set (cached per position)."""
        cache = getattr(self, "_own_eid_cache", None)
        if cache is None:
            cache = self._own_eid_cache = {}
        own = cache.get(position)
        if own is None:
            own = cache[position] = set(self.current_path_eids(position))
        return own

    def _join_certificates(
        self,
        shared_target: int,
        arc_base: List[float],
        queries: List[Tuple[int, float]],
        tol: float,
        ws: DijkstraWorkspace,
    ) -> List[bool]:
        """Batch-certify players sharing ``shared_target`` with ONE search.

        ``arc_base`` prices every arc for a *joining* player, which is a
        per-edge lower bound on any player's deviation pricing (her own
        edges only ever cost more: the join denominator includes her).  One
        reverse Dijkstra from the shared target therefore lower-bounds every
        group member's exact deviation cost at once; a member whose bound
        already fails the improvement test provably has no improving
        deviation and skips her per-player search entirely.  This is how
        broadcast/multicast scans collapse from one Dijkstra per player to
        one per group.

        ``queries`` holds ``(source_id, current_cost)`` per member; returns
        one certificate flag each (True = provably not improving).  The
        search prunes at the group's largest current cost — members whose
        bound gets pruned to ``inf`` are certified a fortiori.
        """
        engine = self.engine
        max_cur = max(cur for _uid, cur in queries)
        # A hair above max_cur so boundary-cost paths are never pruned away
        # from under the certificate comparison below.
        bound = max_cur + 1e-9 * max(1.0, max_cur)
        dist, _, _ = dijkstra_indexed(
            engine.ig, shared_target, arc_costs=arc_base, bound=bound, workspace=ws
        )
        stats = engine.stats
        stats.dijkstra_calls += 1
        out: List[bool] = []
        for uid, cur in queries:
            d = dist[uid]
            # Safety slack: the shared search sums the same float edge
            # prices in a different order than the per-player search would.
            lower = d - _CERT_SLACK * max(1.0, cur)
            certified = not is_improvement(lower, cur, tol)
            if certified:
                stats.players_batched += 1
            out.append(certified)
        return out

    def scan(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        """Best responses under net weights ``wb``.

        With ``improving_only`` (the default) only improving deviations are
        returned and zero-cost players are skipped (their cost cannot
        improve); ``find_all=False`` stops at the first improving deviation.

        Queries are *batched*: players provably without an improving
        deviation (a Lemma 2 certificate for broadcast trees, a shared
        reverse-search lower bound for shared-target groups) skip their
        per-player search, and the remaining exact queries share one
        join-priced arc-cost list plus one Dijkstra workspace.  The
        returned records are identical to :meth:`scan_legacy` — batching
        only ever removes searches whose outcome is already decided.
        """
        raise NotImplementedError

    def scan_legacy(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        """Pre-batching reference scan: one isolated search per player.

        Semantically identical to :meth:`scan`; kept as the cold baseline
        the parity tests and ``benchmarks/bench_lp_warmstart.py`` compare
        against (the same role ``check_equilibrium_legacy`` plays one
        layer up).
        """
        raise NotImplementedError

class _TreeBinding(_StateBinding):
    """Broadcast tree state: players are nodes, everyone targets the root."""

    def __init__(self, engine: BestResponseEngine, state: TreeState) -> None:
        self.engine = engine
        self.state = state
        ig = engine.ig
        game = state.game
        n = ig.num_nodes
        self.root_id = ig.id_of(game.root)

        parent_nid = [-1] * n
        parent_eid = [-1] * n
        edge_id_of = ig.edge_id
        id_of = ig.id_of
        for v_label, p_label in state.tree.parent.items():
            vid = id_of(v_label)
            parent_nid[vid] = id_of(p_label)
            parent_eid[vid] = edge_id_of(v_label, p_label)
        self.parent_nid = parent_nid
        self.parent_eid = parent_eid
        self.bfs_ids = [id_of(u) for u in state.tree.bfs_order]

        usage = np.zeros(engine.num_edges, dtype=np.int64)
        eid_of_edge = ig.edge_id_of
        for e, load in state.loads.items():
            usage[eid_of_edge(e)] = load
        self.usage = usage
        self._denom_join = (usage + 1).astype(np.float64)

        self.player_keys = list(game.player_nodes())
        self.player_ids = [id_of(u) for u in self.player_keys]

        #: per-position own-path edge ids and their CSR arc slots, static
        #: for the life of the binding (state paths never change)
        self._own_path_cache: Dict[int, List[int]] = {}
        self._own_patch_cache: Dict[int, List[Tuple[int, int]]] = {}

        # Lemma 2 certificate precomputation: node depths (for LCA walks)
        # and every (player node, neighbor, non-tree edge) incidence — the
        # exact row set build_broadcast_lp3 materializes.
        depth = [0] * n
        for uid in self.bfs_ids[1:]:
            depth[uid] = depth[parent_nid[uid]] + 1
        self.depth = depth
        tree_eids = set(parent_eid[uid] for uid in self.bfs_ids[1:])
        incidences: List[Tuple[int, int, int]] = []
        indptr = ig._indptr_list
        nbrs = ig._neighbors_list
        adj_e = ig._adj_edge_list
        for uid in self.player_ids:
            for k in range(indptr[uid], indptr[uid + 1]):
                e = adj_e[k]
                if e not in tree_eids:
                    incidences.append((uid, nbrs[k], e))
        self._incidences = incidences

    def current_path_eids(self, position: int) -> List[int]:
        eids = self._own_path_cache.get(position)
        if eids is None:
            eids = []
            x = self.player_ids[position]
            while x != self.root_id:
                eids.append(self.parent_eid[x])
                x = self.parent_nid[x]
            self._own_path_cache[position] = eids
        return list(eids)

    def _own_patch_slots(self, position: int) -> List[Tuple[int, int]]:
        """Static ``(arc slot, edge id)`` pairs of the player's own path."""
        pairs = self._own_patch_cache.get(position)
        if pairs is None:
            slots = self.engine.ig.arc_slots_of_edge
            pairs = [
                (k, e)
                for e in self.current_path_eids(position)
                for k in slots[e]
            ]
            self._own_patch_cache[position] = pairs
        return pairs

    def _lemma2_certified(self, wb_l: List[float], usage_l: List[int]) -> bool:
        """True when *no* player has an improving deviation, Dijkstra-free.

        Evaluates the Lemma 2 incidence constraints — the exact rows
        ``build_broadcast_lp3`` materializes — at the current net weights:
        for a player at ``u`` and a non-tree edge ``(u, v)``, compare the
        shares of ``u``'s tree path down to ``lca(u, v)`` against paying
        ``(u, v)`` and joining ``v``'s tree path (the common suffix above
        the LCA cancels).  By Lemma 2 these single-incidence constraints
        imply every path constraint of LP (1), so all of them holding with
        nonnegative slack certifies the whole state as an equilibrium in
        ``O(incidences * depth)`` arithmetic — this is what collapses the
        broadcast separation oracle's verification rounds from one
        shortest-path search per player to none at all.

        The comparison uses zero slack where the equilibrium checker
        allows ``tol``: the certificate only fires when every constraint
        holds outright, so a borderline scan falls through to the exact
        per-player searches and tolerance semantics never change.
        """
        depth = self.depth
        parent_nid = self.parent_nid
        parent_eid = self.parent_eid
        for uid, vid, e_uv in self._incidences:
            x, y = uid, vid
            lhs = 0.0  # u's shares from u down to the LCA
            rhs = wb_l[e_uv]  # deviation: pay (u, v), then join v's path
            while depth[x] > depth[y]:
                e = parent_eid[x]
                lhs += wb_l[e] / usage_l[e]
                x = parent_nid[x]
            while depth[y] > depth[x]:
                e = parent_eid[y]
                rhs += wb_l[e] / (usage_l[e] + 1)
                y = parent_nid[y]
            while x != y:
                e = parent_eid[x]
                lhs += wb_l[e] / usage_l[e]
                x = parent_nid[x]
                e = parent_eid[y]
                rhs += wb_l[e] / (usage_l[e] + 1)
                y = parent_nid[y]
            # _CERT_SLACK absorbs float noise on *tight* constraints (the
            # LP optimum sits exactly on several of them); even composed
            # across every incidence of a deviation path it stays orders
            # of magnitude below the checker's improvement tolerance.
            if lhs > rhs + _CERT_SLACK * max(1.0, lhs, abs(rhs)):
                return False
        return True

    def _costs_to_root(self, wb: np.ndarray) -> List[float]:
        """Player cost at every node, accumulated root-down (O(n))."""
        wb_l = wb.tolist()
        usage_l = self.usage.tolist()
        parent_nid = self.parent_nid
        parent_eid = self.parent_eid
        cost = [0.0] * len(parent_nid)
        for uid in self.bfs_ids[1:]:
            e = parent_eid[uid]
            n_a = usage_l[e]
            share = wb_l[e] / n_a if n_a > 0 else 0.0
            cost[uid] = cost[parent_nid[uid]] + share
        return cost

    def scan(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        engine = self.engine
        ig = engine.ig
        root = self.root_id
        wb_l = wb.tolist()
        usage_l = self.usage.tolist()
        cost_at = self._costs_to_root(wb)
        base = wb / self._denom_join  # every edge priced for a joining player
        # One shared join-priced per-arc cost list for the whole scan;
        # each query patches its own edges in place and restores them
        # (O(|T_i|) per player instead of an O(m) cost-array copy).
        arc_base = base[ig.adj_edge].tolist()
        ws = DijkstraWorkspace(ig.num_nodes)
        stats = engine.stats

        actives: List[Tuple[int, object, int, float]] = []
        for pos, (key, uid) in enumerate(zip(self.player_keys, self.player_ids)):
            cur = cost_at[uid]
            if improving_only and cur <= tol:
                continue
            actives.append((pos, key, uid, cur))

        if improving_only and actives and self._lemma2_certified(wb_l, usage_l):
            # Lemma 2: every incidence constraint holds, so no player has
            # any improving deviation — the whole scan needs no searches.
            stats.players_batched += len(actives)
            return []

        out: List[BestResponse] = []
        for pos, key, uid, cur in actives:
            # Own edges keep their current denominator n_a; the slot pairs
            # are precomputed once per binding.
            patches: List[Tuple[int, float]] = []
            for k, e in self._own_patch_slots(pos):
                patches.append((k, arc_base[k]))
                arc_base[k] = wb_l[e] / usage_l[e]
            # Improving deviations cost < cur, so cur is a sound search bound.
            bound = cur if improving_only else float("inf")
            dist, pred, pred_edge = dijkstra_indexed(
                ig, uid, target=root, bound=bound, arc_costs=arc_base, workspace=ws
            )
            stats.dijkstra_calls += 1
            for k, v in patches:
                arc_base[k] = v
            dcost = dist[root]
            if improving_only and not is_improvement(dcost, cur, tol):
                continue
            node_ids, edge_ids = _walk_path_back(pred, pred_edge, uid, root)
            out.append(BestResponse(key, pos, cur, dcost, node_ids, edge_ids))
            if improving_only and not find_all:
                break
        return out

    def scan_legacy(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        engine = self.engine
        ig = engine.ig
        root = self.root_id
        wb_l = wb.tolist()
        usage_l = self.usage.tolist()
        cost_at = self._costs_to_root(wb)
        base = wb / self._denom_join
        parent_nid = self.parent_nid
        parent_eid = self.parent_eid

        out: List[BestResponse] = []
        for pos, (key, uid) in enumerate(zip(self.player_keys, self.player_ids)):
            cur = cost_at[uid]
            if improving_only and cur <= tol:
                continue
            costs = base.copy()
            x = uid
            while x != root:
                e = parent_eid[x]
                costs[e] = wb_l[e] / usage_l[e]
                x = parent_nid[x]
            bound = cur if improving_only else float("inf")
            dist, pred, pred_edge = dijkstra_indexed(
                ig, uid, costs, target=root, bound=bound
            )
            engine.stats.dijkstra_calls += 1
            dcost = dist[root]
            if improving_only and not is_improvement(dcost, cur, tol):
                continue
            node_ids, edge_ids = _walk_path_back(pred, pred_edge, uid, root)
            out.append(BestResponse(key, pos, cur, dcost, node_ids, edge_ids))
            if improving_only and not find_all:
                break
        return out


class _GeneralBinding(_StateBinding):
    """General game state: one (source, target) pair and path per player."""

    def __init__(self, engine: BestResponseEngine, state: State) -> None:
        self.engine = engine
        self.state = state
        ig = engine.ig
        game = state.game
        id_of = ig.id_of
        eid_of_edge = ig.edge_id_of

        usage = np.zeros(engine.num_edges, dtype=np.int64)
        for e, count in state.usage.items():
            usage[eid_of_edge(e)] = count
        self.usage = usage
        self._denom_join = (usage + 1).astype(np.float64)

        self.player_keys = list(range(game.n_players))
        self.sources = [id_of(p.source) for p in game.players]
        self.targets = [id_of(p.target) for p in game.players]
        self.paths = [
            [eid_of_edge(e) for e in state.edge_paths[i]]
            for i in range(game.n_players)
        ]

    def current_path_eids(self, position: int) -> List[int]:
        return list(self.paths[position])

    def scan(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        engine = self.engine
        ig = engine.ig
        wb_l = wb.tolist()
        usage_l = self.usage.tolist()
        base = wb / self._denom_join
        # Shared join-priced arc costs; per-player own edges are patched in
        # and restored around each query (see _TreeBinding.scan).
        arc_base = base[ig.adj_edge].tolist()
        slots = ig.arc_slots_of_edge
        ws = DijkstraWorkspace(ig.num_nodes)
        stats = engine.stats

        curs: List[float] = []
        for pos in self.player_keys:
            cur = 0.0
            for e in self.paths[pos]:  # sequential sum, matching the dict order
                cur += wb_l[e] / usage_l[e]
            curs.append(cur)

        certified = [False] * len(curs)
        if improving_only:
            # Players sharing a target (multicast terminals, repeated
            # commodity pairs) share one reverse certificate search.
            groups: dict = {}
            for pos in self.player_keys:
                if curs[pos] <= tol:
                    continue
                groups.setdefault(self.targets[pos], []).append(pos)
            for t, members in groups.items():
                if len(members) < 2:
                    continue
                flags = self._join_certificates(
                    t, arc_base, [(self.sources[p], curs[p]) for p in members], tol, ws
                )
                for p, flag in zip(members, flags):
                    certified[p] = flag

        out: List[BestResponse] = []
        for pos in self.player_keys:
            cur = curs[pos]
            if improving_only and cur <= tol:
                continue
            if certified[pos]:
                continue
            own = self.paths[pos]
            patches: List[Tuple[int, float]] = []
            for e in own:
                val = wb_l[e] / usage_l[e]
                for k in slots[e]:
                    patches.append((k, arc_base[k]))
                    arc_base[k] = val
            s, t = self.sources[pos], self.targets[pos]
            # Improving deviations cost < cur, so cur is a sound search bound
            # (the player's own path always stays reachable below it).
            bound = cur if improving_only else float("inf")
            dist, pred, pred_edge = dijkstra_indexed(
                ig, s, target=t, bound=bound, arc_costs=arc_base, workspace=ws
            )
            stats.dijkstra_calls += 1
            for k, v in patches:
                arc_base[k] = v
            dcost = dist[t]
            if improving_only:
                if not is_improvement(dcost, cur, tol):
                    continue
            elif dcost == float("inf"):
                raise ValueError(f"player {pos} cannot reach her target")
            node_ids, edge_ids = _walk_path_back(pred, pred_edge, s, t)
            out.append(BestResponse(pos, pos, cur, dcost, node_ids, edge_ids))
            if improving_only and not find_all:
                break
        return out

    def scan_legacy(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        engine = self.engine
        ig = engine.ig
        wb_l = wb.tolist()
        usage_l = self.usage.tolist()
        base = wb / self._denom_join

        out: List[BestResponse] = []
        for pos in self.player_keys:
            own = self.paths[pos]
            cur = 0.0
            for e in own:
                cur += wb_l[e] / usage_l[e]
            if improving_only and cur <= tol:
                continue
            costs = base.copy()
            for e in own:
                costs[e] = wb_l[e] / usage_l[e]
            s, t = self.sources[pos], self.targets[pos]
            bound = cur if improving_only else float("inf")
            dist, pred, pred_edge = dijkstra_indexed(ig, s, costs, target=t, bound=bound)
            engine.stats.dijkstra_calls += 1
            dcost = dist[t]
            if improving_only:
                if not is_improvement(dcost, cur, tol):
                    continue
            elif dcost == float("inf"):
                raise ValueError(f"player {pos} cannot reach her target")
            node_ids, edge_ids = _walk_path_back(pred, pred_edge, s, t)
            out.append(BestResponse(pos, pos, cur, dcost, node_ids, edge_ids))
            if improving_only and not find_all:
                break
        return out


class _RuleBinding(_StateBinding):
    """A path state priced through a pluggable cost-sharing rule.

    Handles every family outside the fair/unit fast paths: weighted
    demands (:class:`~repro.games.base.ProportionalSharing`), arbitrary
    per-edge splits (:class:`~repro.games.base.PerEdgeSplit`) and directed
    traversal constraints (games exposing ``engine_arc_open``).  Loads are
    float contribution sums ``L_a = sum_j alpha_j(a)``; a deviator with
    contribution vector ``alpha_i`` prices edge ``a`` at ``alpha_i(a) *
    wb_a / (L_a + alpha_i(a) - [own] * alpha_i(a))`` — two vector
    operations plus the ``O(|T_i|)`` own-edge fix-up, exactly like the
    fair bindings.
    """

    def __init__(self, engine: BestResponseEngine, state: object) -> None:
        self.engine = engine
        self.state = state
        game = state.game
        ig = engine.ig
        id_of = ig.id_of
        eid_of_edge = ig.edge_id_of

        rule = getattr(game, "cost_sharing", None)
        self.rule = rule if rule is not None else FairSharing()
        loads_map = getattr(state, "load", None)
        if loads_map is None:
            loads_map = state.usage
        load = np.zeros(engine.num_edges)
        for e, value in loads_map.items():
            load[eid_of_edge(e)] = value
        self.load = load
        self.usage = load  # the binding contract's per-edge load array

        n = game.n_players
        self.player_keys = list(range(n))
        self.sources = [id_of(p.source) for p in game.players]
        self.targets = [id_of(p.target) for p in game.players]
        self.paths = [
            [eid_of_edge(e) for e in state.edge_paths[i]] for i in range(n)
        ]
        #: per-player contribution vectors (scalars broadcast)
        self.alphas = [self.rule.weights_for(i, engine) for i in range(n)]
        #: scalar contributions resolved once (None = genuine per-edge vector)
        self._scalar_alphas = [
            float(a) if np.isscalar(a) else None for a in self.alphas
        ]
        arc_open_fn = getattr(game, "engine_arc_open", None)
        self.arc_open: Optional[np.ndarray] = (
            arc_open_fn(ig) if arc_open_fn is not None else None
        )
        self._arc_open_list = (
            self.arc_open.tolist() if self.arc_open is not None else None
        )
        #: CSR arc slots of each edge id (own-edge patching in `scan`)
        self._slots_of_edge = ig.arc_slots_of_edge

    def current_path_eids(self, position: int) -> List[int]:
        return list(self.paths[position])

    def _alpha_on(self, position: int, eid: int) -> float:
        a = self.alphas[position]
        return float(a) if np.isscalar(a) else float(a[eid])

    def current_share_coeff(self, position: int, eid: int) -> float:
        return self._alpha_on(position, eid) / self.load[eid]

    def joining_share_coeff(self, position: int, eid: int) -> float:
        a = self._alpha_on(position, eid)
        extra = 0.0 if eid in self._own_eids(position) else a
        return a / (self.load[eid] + extra)

    def scan(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        engine = self.engine
        ig = engine.ig
        load = self.load
        wb_l = wb.tolist()
        load_l = load.tolist()
        adj_edge = ig.adj_edge
        mask = self.arc_open
        mask_l = self._arc_open_list
        slots_of_edge = self._slots_of_edge
        ws = DijkstraWorkspace(ig.num_nodes)
        stats = engine.stats
        # Players sharing one scalar contribution (all of them, under
        # proportional sharing with repeated demands) share one join-priced
        # per-arc cost list per scan; each query patches its own edges in
        # place and restores them — O(|T_i|) per player instead of O(m).
        arc_base_cache: dict = {}

        def arc_base_for(a_s: float) -> List[float]:
            arc_costs = arc_base_cache.get(a_s)
            if arc_costs is None:
                # every edge priced for a joining player of weight a_s,
                # expanded to CSR arc slots (closed directions -> inf)
                expanded = ((a_s * wb) / (load + a_s))[adj_edge]
                if mask is not None:
                    expanded = np.where(mask, expanded, np.inf)
                arc_costs = arc_base_cache[a_s] = expanded.tolist()
            return arc_costs

        curs: List[float] = []
        for pos in self.player_keys:
            a = self.alphas[pos]
            a_s = self._scalar_alphas[pos]
            own = self.paths[pos]
            cur = 0.0
            if a_s is not None:
                for e in own:  # sequential sum, matching the dict-based order
                    cur += a_s * wb_l[e] / load_l[e]
            else:
                for e in own:
                    cur += a[e] * wb_l[e] / load_l[e]
            curs.append(cur)

        certified = [False] * len(curs)
        if improving_only and mask is None:
            # Scalar-contribution players sharing (weight, target) share one
            # reverse certificate search on their join-priced arc list.
            # Directed games keep per-player searches: the reverse of an
            # open arc need not be open.
            groups: dict = {}
            for pos in self.player_keys:
                a_s = self._scalar_alphas[pos]
                if a_s is None or curs[pos] <= tol:
                    continue
                groups.setdefault((a_s, self.targets[pos]), []).append(pos)
            for (a_s, t), members in groups.items():
                if len(members) < 2:
                    continue
                flags = self._join_certificates(
                    t,
                    arc_base_for(a_s),
                    [(self.sources[p], curs[p]) for p in members],
                    tol,
                    ws,
                )
                for p, flag in zip(members, flags):
                    certified[p] = flag

        out: List[BestResponse] = []
        for pos in self.player_keys:
            cur = curs[pos]
            if improving_only and cur <= tol:
                continue
            if certified[pos]:
                continue
            a = self.alphas[pos]
            a_s = self._scalar_alphas[pos]
            own = self.paths[pos]
            s, t = self.sources[pos], self.targets[pos]
            # Improving deviations cost < cur, so cur is a sound search bound.
            bound = cur if improving_only else float("inf")
            if a_s is not None:
                arc_costs = arc_base_for(a_s)
                patches = []
                for e in own:  # own edges keep their current denominator L_a
                    val = a_s * wb_l[e] / load_l[e]
                    for k in slots_of_edge[e]:
                        if mask_l is None or mask_l[k]:
                            patches.append((k, arc_costs[k]))
                            arc_costs[k] = val
                dist, pred, pred_edge = dijkstra_indexed(
                    ig, s, target=t, bound=bound, arc_costs=arc_costs, workspace=ws
                )
                for k, v in patches:
                    arc_costs[k] = v
            else:
                costs = (a * wb) / (load + a)
                for e in own:
                    costs[e] = a[e] * wb_l[e] / load_l[e]
                dist, pred, pred_edge = dijkstra_indexed(
                    ig, s, costs, target=t, bound=bound, arc_open=mask, workspace=ws
                )
            stats.dijkstra_calls += 1
            dcost = dist[t]
            if improving_only:
                if not is_improvement(dcost, cur, tol):
                    continue
            elif dcost == float("inf"):
                raise ValueError(f"player {pos} cannot reach her target")
            node_ids, edge_ids = _walk_path_back(pred, pred_edge, s, t)
            out.append(BestResponse(pos, pos, cur, dcost, node_ids, edge_ids))
            if improving_only and not find_all:
                break
        return out

    def scan_legacy(
        self,
        wb: np.ndarray,
        tol: float = EQ_TOL,
        find_all: bool = False,
        improving_only: bool = True,
    ) -> List[BestResponse]:
        engine = self.engine
        ig = engine.ig
        load = self.load
        wb_l = wb.tolist()
        load_l = load.tolist()
        adj_edge = ig.adj_edge
        mask = self.arc_open
        mask_l = self._arc_open_list
        slots_of_edge = self._slots_of_edge
        arc_base_cache: dict = {}

        out: List[BestResponse] = []
        for pos in self.player_keys:
            a = self.alphas[pos]
            a_s = self._scalar_alphas[pos]
            own = self.paths[pos]
            cur = 0.0
            if a_s is not None:
                for e in own:
                    cur += a_s * wb_l[e] / load_l[e]
            else:
                for e in own:
                    cur += a[e] * wb_l[e] / load_l[e]
            if improving_only and cur <= tol:
                continue
            s, t = self.sources[pos], self.targets[pos]
            bound = cur if improving_only else float("inf")
            if a_s is not None:
                arc_costs = arc_base_cache.get(a_s)
                if arc_costs is None:
                    expanded = ((a_s * wb) / (load + a_s))[adj_edge]
                    if mask is not None:
                        expanded = np.where(mask, expanded, np.inf)
                    arc_costs = arc_base_cache[a_s] = expanded.tolist()
                patches = []
                for e in own:
                    val = a_s * wb_l[e] / load_l[e]
                    for k in slots_of_edge[e]:
                        if mask_l is None or mask_l[k]:
                            patches.append((k, arc_costs[k]))
                            arc_costs[k] = val
                dist, pred, pred_edge = dijkstra_indexed(
                    ig, s, target=t, bound=bound, arc_costs=arc_costs
                )
                for k, v in patches:
                    arc_costs[k] = v
            else:
                costs = (a * wb) / (load + a)
                for e in own:
                    costs[e] = a[e] * wb_l[e] / load_l[e]
                dist, pred, pred_edge = dijkstra_indexed(
                    ig, s, costs, target=t, bound=bound, arc_open=mask
                )
            engine.stats.dijkstra_calls += 1
            dcost = dist[t]
            if improving_only:
                if not is_improvement(dcost, cur, tol):
                    continue
            elif dcost == float("inf"):
                raise ValueError(f"player {pos} cannot reach her target")
            node_ids, edge_ids = _walk_path_back(pred, pred_edge, s, t)
            out.append(BestResponse(pos, pos, cur, dcost, node_ids, edge_ids))
            if improving_only and not find_all:
                break
        return out


class EngineProfile:
    """Mutable strategy profile for best-response dynamics.

    Holds the usage counts and per-player paths in id space; a move updates
    the counts incrementally along the old and new paths instead of
    rebuilding (and revalidating) a ``State``.  ``to_state`` materializes a
    validated :class:`~repro.games.game.State` at the end of a run.

    The per-arc join-priced cost list is maintained *incrementally* too: a
    move re-prices only the arcs of the edges whose usage changed, and each
    best-response query patches the mover's own edges in place around a
    workspace-backed Dijkstra — so a dynamics step costs ``O(|old| + |new|)``
    bookkeeping plus the search, never an ``O(m)`` reset.  Oracle-work
    counters are shared with the engine via :attr:`stats`.
    """

    def __init__(self, engine: BestResponseEngine, state: State, wb: np.ndarray) -> None:
        rule = getattr(state.game, "cost_sharing", None)
        if rule is not None and not isinstance(rule, FairSharing):
            # Weighted/per-edge-split games have no exact Rosenthal
            # potential, so sequential best-response descent has no
            # termination guarantee; directed games (fair rule + arc
            # masks) are fine.
            raise TypeError(
                "best-response dynamics require fair-sharing states; got a "
                f"state priced by {type(rule).__name__}"
            )
        self.engine = engine
        self.game: NetworkDesignGame = state.game
        ig = engine.ig
        eid_of_edge = ig.edge_id_of
        id_of = ig.id_of

        self.wb = wb
        self._wb_l = wb.tolist()
        usage = np.zeros(engine.num_edges, dtype=np.int64)
        for e, count in state.usage.items():
            usage[eid_of_edge(e)] = count
        self.usage = usage
        self._usage_l = usage.tolist()
        self.node_paths: List[List[int]] = [
            [id_of(u) for u in nodes] for nodes in state.node_paths
        ]
        self.eid_paths: List[List[int]] = [
            [eid_of_edge(e) for e in state.edge_paths[i]]
            for i in range(self.game.n_players)
        ]
        self.sources = [id_of(p.source) for p in self.game.players]
        self.targets = [id_of(p.target) for p in self.game.players]
        self._H = engine.harmonic_table(self.game.n_players)
        # Directed games: dynamics must search along allowed arcs only.
        arc_open_fn = getattr(self.game, "engine_arc_open", None)
        self.arc_open: Optional[np.ndarray] = (
            arc_open_fn(ig) if arc_open_fn is not None else None
        )
        self._mask_l = self.arc_open.tolist() if self.arc_open is not None else None
        # Join-priced per-arc cost list, kept current across moves; closed
        # directions are inf and never rewritten.
        expanded = (wb / (usage + 1.0))[ig.adj_edge]
        if self.arc_open is not None:
            expanded = np.where(self.arc_open, expanded, np.inf)
        self._arc_base: List[float] = expanded.tolist()
        self._slots = ig.arc_slots_of_edge
        self._ws = DijkstraWorkspace(ig.num_nodes)

    @property
    def stats(self) -> OracleStats:
        """The engine's shared oracle counters (searches run, batch skips)."""
        return self.engine.stats

    # -- queries -----------------------------------------------------------

    def player_cost(self, position: int) -> float:
        wb_l = self._wb_l
        usage_l = self._usage_l
        total = 0.0
        for e in self.eid_paths[position]:
            total += wb_l[e] / usage_l[e]
        return total

    def potential(self) -> float:
        """Rosenthal potential ``sum_a (w_a - b_a) H_{n_a}`` (vectorized)."""
        return float(self.wb @ self._H[self.usage])

    def best_response(self, position: int, bounded: bool = False) -> BestResponse:
        """Best response of one player against the current profile.

        Always returns a record (callers compare costs), like the legacy
        per-player oracle; zero-cost players short-circuit to "stay put".
        With ``bounded=True`` the search prunes at the player's current cost
        — exact whenever an improving deviation exists, ``inf`` deviation
        cost otherwise — which is all a dynamics step needs.
        """
        cur = self.player_cost(position)
        if cur <= 0.0:  # nonnegative costs: staying is already optimal
            return BestResponse(
                position,
                position,
                cur,
                cur,
                list(self.node_paths[position]),
                list(self.eid_paths[position]),
            )
        own = self.eid_paths[position]
        wb_l = self._wb_l
        usage_l = self._usage_l
        arc_base = self._arc_base
        slots = self._slots
        mask_l = self._mask_l
        patches: List[Tuple[int, float]] = []
        for e in own:
            val = wb_l[e] / usage_l[e]
            for k in slots[e]:
                if mask_l is None or mask_l[k]:
                    patches.append((k, arc_base[k]))
                    arc_base[k] = val
        s, t = self.sources[position], self.targets[position]
        dist, pred, pred_edge = dijkstra_indexed(
            self.engine.ig,
            s,
            target=t,
            bound=cur if bounded else float("inf"),
            arc_costs=arc_base,
            workspace=self._ws,
        )
        self.engine.stats.dijkstra_calls += 1
        for k, v in patches:
            arc_base[k] = v
        dcost = dist[t]
        if dcost == float("inf"):
            if bounded:  # no deviation beats the current path
                return BestResponse(
                    position,
                    position,
                    cur,
                    dcost,
                    list(self.node_paths[position]),
                    list(self.eid_paths[position]),
                )
            raise ValueError(f"player {position} cannot reach her target")
        node_ids, edge_ids = _walk_path_back(pred, pred_edge, s, t)
        return BestResponse(position, position, cur, dcost, node_ids, edge_ids)

    # -- mutation ----------------------------------------------------------

    def apply(self, position: int, node_ids: List[int], edge_ids: List[int]) -> None:
        """Switch one player's path, updating usage counts incrementally.

        Only the arcs of edges whose usage changed are re-priced in the
        shared cost list — the rest of the graph is untouched.
        """
        usage = self.usage
        usage_l = self._usage_l
        wb_l = self._wb_l
        arc_base = self._arc_base
        slots = self._slots
        mask_l = self._mask_l
        changed = set()
        for e in self.eid_paths[position]:
            usage[e] -= 1
            usage_l[e] -= 1
            changed.add(e)
        for e in edge_ids:
            usage[e] += 1
            usage_l[e] += 1
            changed.add(e)
        for e in changed:
            val = wb_l[e] / (usage_l[e] + 1.0)
            for k in slots[e]:
                if mask_l is None or mask_l[k]:
                    arc_base[k] = val
        self.node_paths[position] = list(node_ids)
        self.eid_paths[position] = list(edge_ids)

    # -- materialization ---------------------------------------------------

    def to_state(self) -> State:
        """Validated state for the current profile (family-aware)."""
        labels = self.engine.ig.labels
        return self.game.state(
            [[labels[i] for i in path] for path in self.node_paths]
        )
