"""Process-pool worker entry points for the sweep runtime.

Everything a worker touches crosses a process boundary, so the contract is
JSON-shaped in both directions: a *payload* dict in (instance JSON, solver
name, plain-data options), an *outcome* dict out (status, serialized
result, elapsed seconds, error text).  The same functions also run inline
for ``--jobs 1``, which is what makes "parallel equals serial" a structural
property rather than a test hope: both modes execute literally this code.

Per-job timeouts use ``SIGALRM``'s interval timer inside the worker — the
only reliable way to bound a *CPU-bound* job without killing the whole
pool.  On platforms without ``SIGALRM`` (Windows), or when a job runs on a
non-main thread, timeouts degrade to unenforced; outcomes then carry
``"timeout_enforced": false`` so callers can tell the budget was never
armed rather than merely not hit.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.utils.hashing import source_digest

JSONDict = Dict[str, Any]


class JobTimeout(Exception):
    """A sweep job exceeded its wall-clock budget."""


def _timeout_supported() -> bool:
    return hasattr(signal, "SIGALRM") and (
        threading.current_thread() is threading.main_thread()
    )


@contextmanager
def job_timeout(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` in the current (main) thread after ``seconds``.

    A no-op when ``seconds`` is falsy or enforcement is unsupported here
    (no ``SIGALRM``, or not the main thread).  On exit the previous handler
    is restored and an outer interval timer is re-armed with whatever time
    it had left (firing ~immediately when already overdue), so nesting is
    safe.
    """
    if not seconds or not _timeout_supported():
        yield
        return

    def _raise(_signum: int, _frame: Any) -> None:
        raise JobTimeout(f"job exceeded {seconds:g}s timeout")

    start = time.monotonic()
    previous = signal.signal(signal.SIGALRM, _raise)
    outer_delay, _ = signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            remaining = outer_delay - (time.monotonic() - start)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6))


def _failure(exc: BaseException, elapsed: float) -> JSONDict:
    if isinstance(exc, JobTimeout):
        return {"status": "timeout", "error": str(exc), "elapsed_seconds": elapsed}
    return {
        "status": "failed",
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(limit=8),
        "elapsed_seconds": elapsed,
    }


def run_solve_job(payload: JSONDict) -> JSONDict:
    """Execute one solve cell: deserialize, solve, serialize.

    ``payload`` keys: ``instance`` (game JSON), ``solver`` (registry name),
    ``opts`` (dict), optional ``timeout`` (seconds).  Returns an outcome
    dict with ``status`` in ``{"ok", "failed", "timeout"}`` and, on
    success, the full ``report`` JSON (:func:`report_to_json` shape).
    """
    from repro.api import serialize, solve

    start = time.perf_counter()
    extra = _timeout_note(payload)
    try:
        with job_timeout(payload.get("timeout")):
            game = serialize.game_from_json(payload["instance"])
            report = solve(game, payload["solver"], **payload.get("opts", {}))
    except Exception as exc:  # noqa: BLE001 - outcomes must cross the pool
        return {**_failure(exc, time.perf_counter() - start), **extra}
    return {
        "status": "ok",
        "report": serialize.report_to_json(report),
        "elapsed_seconds": time.perf_counter() - start,
        **extra,
    }


def _timeout_note(payload: JSONDict) -> JSONDict:
    """``{"timeout_enforced": False}`` when a requested budget cannot be armed."""
    if payload.get("timeout") and not _timeout_supported():
        return {"timeout_enforced": False}
    return {}


_PACKAGE_DIGEST: Optional[str] = None


def package_source_digest() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package.

    Experiments exercise the whole library, so their cache cells must
    invalidate when *any* library source changes — not just the experiment
    module.  Hashing the full tree costs a few milliseconds and is
    computed once per process.
    """
    global _PACKAGE_DIGEST
    if _PACKAGE_DIGEST is None:
        from pathlib import Path

        import repro

        root = Path(repro.__file__).resolve().parent
        parts = [repro.__version__]
        for path in sorted(root.rglob("*.py")):
            parts.append(str(path.relative_to(root)))
            parts.append(path.read_text(errors="replace"))
        _PACKAGE_DIGEST = source_digest(*parts)
    return _PACKAGE_DIGEST


def experiment_source_digest(experiment_id: str) -> str:
    """Digest of the sources that determine one experiment's output.

    Combines the experiment module's own source with
    :func:`package_source_digest`, so editing the experiment *or any
    library module it might call* invalidates exactly the affected cache
    generation — there is no version number to forget to bump, and a
    stale-library cell can never be served as current.
    """
    import inspect

    from repro.experiments import EXPERIMENTS

    fn = EXPERIMENTS[experiment_id.upper()]
    module = inspect.getmodule(fn)
    source = inspect.getsource(module) if module is not None else repr(fn)
    return source_digest(package_source_digest(), experiment_id.upper(), source)


def run_experiment_job(payload: JSONDict) -> JSONDict:
    """Execute one experiment: ``payload`` keys ``experiment``, ``seed``,
    optional ``timeout``.

    On success the outcome carries the full
    :class:`~repro.experiments.records.ExperimentResult` as JSON
    (:meth:`to_json`), which is also what the cache stores.
    """
    from repro.experiments import run_experiment

    start = time.perf_counter()
    extra = _timeout_note(payload)
    try:
        with job_timeout(payload.get("timeout")):
            result = run_experiment(payload["experiment"], seed=payload.get("seed", 0))
    except Exception as exc:  # noqa: BLE001 - outcomes must cross the pool
        return {**_failure(exc, time.perf_counter() - start), **extra}
    return {
        "status": "ok",
        "result": result.to_json(),
        "elapsed_seconds": time.perf_counter() - start,
        **extra,
    }
