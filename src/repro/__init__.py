"""repro — reproduction of *Enforcing efficient equilibria in network design
games via subsidies* (Augustine, Caragiannis, Fanelli, Kalaitzis, SPAA 2012).

Public API highlights
---------------------
- :class:`repro.graphs.Graph` and the graph substrate,
- :class:`repro.games.NetworkDesignGame` / :class:`repro.games.BroadcastGame`,
- SNE solvers in :mod:`repro.subsidies` (LP formulations (1)-(3) of the paper,
  the Theorem 6 constructive ``wgt(T)/e`` algorithm, all-or-nothing solvers),
- SND solvers and heuristics,
- hardness-reduction constructors in :mod:`repro.hardness`,
- lower-bound instance families and constants in :mod:`repro.bounds`,
- the experiment harness in :mod:`repro.experiments` (CLI: ``repro-experiments``).
"""

__version__ = "1.0.0"

from repro import graphs, utils

__all__ = ["graphs", "utils", "__version__"]
