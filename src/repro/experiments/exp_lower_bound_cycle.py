"""E3 — Theorem 11: the unit cycle needs ~ wgt(T)/e subsidies.

The LP optimum on the n-cycle (verified against the closed form for small
n) climbs monotonically toward 1/e as n grows — the paper's tightness
result for the Theorem 6 bound.
"""

from __future__ import annotations

import math

from repro.bounds.instances import theorem11_cycle_instance, theorem11_optimal_fraction
from repro.experiments.records import ExperimentResult
from repro.subsidies import solve_sne_broadcast_lp3
from repro.utils.timing import Timer


def run(seed: int = 0, lp_sizes=(8, 16, 32, 64), formula_sizes=(128, 512, 4096, 65536)) -> ExperimentResult:
    rows = []
    with Timer() as t:
        for n in lp_sizes:
            _, state = theorem11_cycle_instance(n)
            lp = solve_sne_broadcast_lp3(state)
            rows.append(
                {
                    "n": n,
                    "method": "LP (3)",
                    "subsidy_fraction": lp.cost / n,
                    "closed_form": theorem11_optimal_fraction(n),
                    "gap_to_1/e": 1 / math.e - lp.cost / n,
                }
            )
        for n in formula_sizes:
            f = theorem11_optimal_fraction(n)
            rows.append(
                {
                    "n": n,
                    "method": "closed form",
                    "subsidy_fraction": f,
                    "closed_form": f,
                    "gap_to_1/e": 1 / math.e - f,
                }
            )
    result = ExperimentResult(
        experiment_id="E3",
        title="Theorem 11: optimal subsidies on the unit cycle approach wgt(T)/e",
        headline=(
            "optimal fraction increases toward 1/e = 0.36788 "
            f"(measured at n={formula_sizes[-1]}: "
            f"{theorem11_optimal_fraction(formula_sizes[-1]):.5f}); "
            "paper: 37% may be necessary"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
